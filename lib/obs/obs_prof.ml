(* Shadow-state profiler (see obs_prof.mli for the contract).

   Attribution follows the RoadRunner idiom the shadow memory already
   reproduces: the cell lives *inside* the detector's per-variable
   shadow state, so the hot path never probes a table — it increments
   through a pointer it already holds.  The cell table here exists
   for the cold sides only: census, merge, ranking, export. *)

let schema_version = "ftrace.prof/1"

type rule_class = Same_epoch | Epoch | Vc

let class_to_string = function
  | Same_epoch -> "same_epoch"
  | Epoch -> "epoch"
  | Vc -> "vc"

type cell = {
  c_key : int;
  c_name : string;
  c_rules : int array;
  mutable c_inflations : int;
  mutable c_deflations : int;
  mutable c_inflated_now : bool;
  mutable c_rvc_words : int;
  mutable c_ns : float;      (* sampled nanoseconds attributed here *)
  mutable c_samples : int;
}

let max_rules = 16

let no_cell =
  { c_key = -1;
    c_name = "";
    c_rules = Array.make max_rules 0;
    c_inflations = 0;
    c_deflations = 0;
    c_inflated_now = false;
    c_rvc_words = 0;
    c_ns = 0.;
    c_samples = 0 }

let buckets_n = 40  (* log2-ns buckets: 2^0 .. 2^39 ns *)

type enabled = {
  topk_cap : int;
  stride : int;
  series_cap : int;
  start : float;  (* monotonic epoch shared by all views of a run *)
  series_id : int;
  mutable rule_names : string array;
  mutable rule_classes : rule_class array;
  cells : (int, cell) Hashtbl.t;
  (* per-class totals (one access = one rule = one class) *)
  mutable tot_same : int;
  mutable tot_epoch : int;
  mutable tot_vc : int;
  mutable sync_vc_ops : int;
  mutable tot_inflations : int;
  mutable tot_deflations : int;
  (* timing sampler *)
  mutable sampling : bool;
      (* a timing sample is pending: the next hit must record its cell.
         Gates the [last_cell] pointer store — unconditional, it would
         run the GC write barrier once per access (measured ~15% on
         moldyn); gated, the common path is one immediate-bool test. *)
  mutable last_cell : cell;
  mutable last_vc : bool;
  mutable countdown : int;
  buckets_fast : int array;
  buckets_vc : int array;
  mutable t_samples : int;
  (* census *)
  mutable census_cb : (unit -> unit) option;
  mutable census_taken : bool;
  mutable cs_vars : int;
  mutable cs_inflated : int;
  mutable cs_words : int;
  mutable cs_rvc_words : int;
  (* bounded cumulative series, newest first: (view id, at, o1, vc) *)
  mutable series_rev : (int * float * int * int) list;
  mutable series_n : int;
  mutable series_stride : int;  (* samples per point; doubles on thin *)
  mutable series_skip : int;
  topk : Obs_topk.t;
  mutable folded : bool;
}

type t = enabled option

let disabled : t = None
let is_enabled = Option.is_some

(* Shard views need distinct series ids; views are created on worker
   domains, so the counter is atomic. *)
let next_id = Atomic.make 0

let make ~topk_cap ~stride ~series_cap ~start =
  { topk_cap;
    stride;
    series_cap;
    start;
    series_id = Atomic.fetch_and_add next_id 1;
    rule_names = [||];
    rule_classes = [||];
    cells = Hashtbl.create 256;
    tot_same = 0;
    tot_epoch = 0;
    tot_vc = 0;
    sync_vc_ops = 0;
    tot_inflations = 0;
    tot_deflations = 0;
    sampling = false;
    last_cell = no_cell;
    last_vc = false;
    countdown = stride;
    buckets_fast = Array.make buckets_n 0;
    buckets_vc = Array.make buckets_n 0;
    t_samples = 0;
    census_cb = None;
    census_taken = false;
    cs_vars = 0;
    cs_inflated = 0;
    cs_words = 0;
    cs_rvc_words = 0;
    series_rev = [];
    series_n = 0;
    series_stride = 1;
    series_skip = 0;
    topk = Obs_topk.create ~capacity:topk_cap ();
    folded = false }

let create ?(topk_capacity = 256) ?(sample_stride = 512)
    ?(series_capacity = 512) () : t =
  Some
    (make ~topk_cap:(max 1 topk_capacity) ~stride:(max 1 sample_stride)
       ~series_cap:(max 16 series_capacity) ~start:(Obs_clock.now ()))

(* ------------------------------------------------------------------ *)
(* Detector-side hooks                                                *)

let register_rules (t : t) rules =
  match t with
  | None -> ()
  | Some e ->
    e.rule_names <- Array.map fst rules;
    e.rule_classes <- Array.map snd rules

let cell (t : t) ~key ~name =
  match t with
  | None -> no_cell
  | Some e -> (
    match Hashtbl.find_opt e.cells key with
    | Some c -> c
    | None ->
      let c =
        { no_cell with
          c_key = key;
          c_name = name;
          c_rules =
            Array.make (max max_rules (Array.length e.rule_names)) 0 }
      in
      Hashtbl.replace e.cells key c;
      c)

let hit (t : t) c i =
  match t with
  | None -> ()
  | Some e ->
    c.c_rules.(i) <- c.c_rules.(i) + 1;
    (match e.rule_classes.(i) with
    | Same_epoch ->
      e.tot_same <- e.tot_same + 1;
      if e.sampling then begin
        e.last_cell <- c;
        e.last_vc <- false
      end
    | Epoch ->
      e.tot_epoch <- e.tot_epoch + 1;
      if e.sampling then begin
        e.last_cell <- c;
        e.last_vc <- false
      end
    | Vc ->
      e.tot_vc <- e.tot_vc + 1;
      if e.sampling then begin
        e.last_cell <- c;
        e.last_vc <- true
      end)

(* Class-specialized hit variants for detectors whose rule sites know
   their Figure 5 cost class statically (FastTrack's seven rules):
   they skip the [rule_classes] lookup and dispatch above, leaving the
   common path at two counter increments and one immediate-bool test.
   The [i lsr] guard is dropped deliberately — cell rule arrays are
   never smaller than [max_rules] (16) and every static rule index is
   below it, so the unsafe accesses are in bounds by construction. *)

let hit_same (t : t) c i =
  match t with
  | None -> ()
  | Some e ->
    Array.unsafe_set c.c_rules i (Array.unsafe_get c.c_rules i + 1);
    e.tot_same <- e.tot_same + 1;
    if e.sampling then begin
      e.last_cell <- c;
      e.last_vc <- false
    end

let hit_epoch (t : t) c i =
  match t with
  | None -> ()
  | Some e ->
    Array.unsafe_set c.c_rules i (Array.unsafe_get c.c_rules i + 1);
    e.tot_epoch <- e.tot_epoch + 1;
    if e.sampling then begin
      e.last_cell <- c;
      e.last_vc <- false
    end

let hit_vc (t : t) c i =
  match t with
  | None -> ()
  | Some e ->
    Array.unsafe_set c.c_rules i (Array.unsafe_get c.c_rules i + 1);
    e.tot_vc <- e.tot_vc + 1;
    if e.sampling then begin
      e.last_cell <- c;
      e.last_vc <- true
    end

(* The fully-inlined protocol: a detector that already counts rule
   hits in its own registers (FastTrack's [Stats.counter] refs) keeps
   {e only} the per-cell increment on its hot path — through the raw
   array {!cell_rules} hands out, no call, no option match — and
   reconciles the class totals at sample and census boundaries via
   {!note_totals}.  {!attribute} replaces the [hit] family's
   last-cell bookkeeping for the one access per stride that is being
   timed. *)

let cell_rules c = c.c_rules

let attribute (t : t) c ~vc =
  match t with
  | None -> ()
  | Some e ->
    e.last_cell <- c;
    e.last_vc <- vc

let note_totals (t : t) ~same ~epoch ~vc =
  match t with
  | None -> ()
  | Some e ->
    e.tot_same <- same;
    e.tot_epoch <- epoch;
    e.tot_vc <- vc

let inflate (t : t) c =
  match t with
  | None -> ()
  | Some e ->
    c.c_inflations <- c.c_inflations + 1;
    e.tot_inflations <- e.tot_inflations + 1

let deflate (t : t) c =
  match t with
  | None -> ()
  | Some e ->
    c.c_deflations <- c.c_deflations + 1;
    e.tot_deflations <- e.tot_deflations + 1

let sync_vc_op (t : t) =
  match t with
  | None -> ()
  | Some e -> e.sync_vc_ops <- e.sync_vc_ops + 1

(* ------------------------------------------------------------------ *)
(* Sampled timing + counter-track series                              *)

let sample_due (t : t) =
  match t with
  | None -> false
  | Some e ->
    e.countdown <- e.countdown - 1;
    if e.countdown <= 0 then begin
      e.countdown <- e.stride;
      e.sampling <- true;
      true
    end
    else false

let sample_stride (t : t) = match t with None -> 0 | Some e -> e.stride

let begin_sample (t : t) =
  match t with None -> () | Some e -> e.sampling <- true

let log2_bucket ns =
  let n = int_of_float ns in
  if n <= 1 then 0
  else begin
    let rec lg acc n = if n <= 1 then acc else lg (acc + 1) (n lsr 1) in
    min (buckets_n - 1) (lg 0 n)
  end

(* Thin the view's own series: keep every other point (oldest-first
   parity, so the endpoints survive) and double the stride.  Cold:
   runs O(log total-samples) times per view. *)
let thin_series e =
  let kept =
    List.rev e.series_rev
    |> List.filteri (fun i _ -> i mod 2 = 0)
    |> List.rev
  in
  e.series_rev <- kept;
  e.series_n <- List.length kept;
  e.series_stride <- e.series_stride * 2

let push_point e =
  e.series_skip <- e.series_skip - 1;
  if e.series_skip <= 0 then begin
    e.series_skip <- e.series_stride;
    e.series_rev <-
      ( e.series_id,
        Obs_clock.now () -. e.start,
        e.tot_same + e.tot_epoch,
        e.tot_vc )
      :: e.series_rev;
    e.series_n <- e.series_n + 1;
    if e.series_n > e.series_cap then thin_series e
  end

let sample (t : t) ~ns =
  match t with
  | None -> ()
  | Some e ->
    e.sampling <- false;
    let c = e.last_cell in
    c.c_ns <- c.c_ns +. ns;
    c.c_samples <- c.c_samples + 1;
    let buckets = if e.last_vc then e.buckets_vc else e.buckets_fast in
    let b = log2_bucket ns in
    buckets.(b) <- buckets.(b) + 1;
    e.t_samples <- e.t_samples + 1;
    push_point e

(* ------------------------------------------------------------------ *)
(* Census + top-K fold                                                *)

let set_census (t : t) f =
  match t with None -> () | Some e -> e.census_cb <- Some f

let census_var (t : t) c ~inflated ~words ~rvc_words =
  match t with
  | None -> ()
  | Some e ->
    e.cs_vars <- e.cs_vars + 1;
    if inflated then e.cs_inflated <- e.cs_inflated + 1;
    e.cs_words <- e.cs_words + words;
    e.cs_rvc_words <- e.cs_rvc_words + rvc_words;
    c.c_inflated_now <- inflated;
    c.c_rvc_words <- rvc_words

let cell_total c = Array.fold_left ( + ) 0 c.c_rules

let fold_topk e =
  if not e.folded then begin
    Hashtbl.iter
      (fun key c ->
        let n = cell_total c in
        if n > 0 then Obs_topk.hit ~by:n e.topk key)
      e.cells;
    e.folded <- true
  end

let take_census (t : t) =
  match t with
  | None -> ()
  | Some e ->
    (match e.census_cb with
    | None -> ()
    | Some f ->
      e.cs_vars <- 0;
      e.cs_inflated <- 0;
      e.cs_words <- 0;
      e.cs_rvc_words <- 0;
      f ();
      e.census_taken <- true);
    fold_topk e

(* ------------------------------------------------------------------ *)
(* Sharding                                                           *)

let shard_view (t : t) : t =
  match t with
  | None -> None
  | Some e ->
    let v =
      make ~topk_cap:e.topk_cap ~stride:e.stride ~series_cap:e.series_cap
        ~start:e.start
    in
    Some v

let merge_cell ~into:d c =
  let n = min (Array.length d.c_rules) (Array.length c.c_rules) in
  for i = 0 to n - 1 do
    d.c_rules.(i) <- d.c_rules.(i) + c.c_rules.(i)
  done;
  d.c_inflations <- d.c_inflations + c.c_inflations;
  d.c_deflations <- d.c_deflations + c.c_deflations;
  d.c_inflated_now <- d.c_inflated_now || c.c_inflated_now;
  d.c_rvc_words <- d.c_rvc_words + c.c_rvc_words;
  d.c_ns <- d.c_ns +. c.c_ns;
  d.c_samples <- d.c_samples + c.c_samples

let merge ~(into : t) (src : t) =
  match (into, src) with
  | None, _ | _, None -> ()
  | Some d, Some s ->
    Hashtbl.iter
      (fun key c ->
        match Hashtbl.find_opt d.cells key with
        | Some dc -> merge_cell ~into:dc c
        | None -> Hashtbl.replace d.cells key c)
      s.cells;
    if Array.length d.rule_names = 0 then begin
      d.rule_names <- s.rule_names;
      d.rule_classes <- s.rule_classes
    end;
    d.tot_same <- d.tot_same + s.tot_same;
    d.tot_epoch <- d.tot_epoch + s.tot_epoch;
    d.tot_vc <- d.tot_vc + s.tot_vc;
    d.sync_vc_ops <- d.sync_vc_ops + s.sync_vc_ops;
    d.tot_inflations <- d.tot_inflations + s.tot_inflations;
    d.tot_deflations <- d.tot_deflations + s.tot_deflations;
    Array.iteri
      (fun i n -> d.buckets_fast.(i) <- d.buckets_fast.(i) + n)
      s.buckets_fast;
    Array.iteri
      (fun i n -> d.buckets_vc.(i) <- d.buckets_vc.(i) + n)
      s.buckets_vc;
    d.t_samples <- d.t_samples + s.t_samples;
    d.census_taken <- d.census_taken || s.census_taken;
    d.cs_vars <- d.cs_vars + s.cs_vars;
    d.cs_inflated <- d.cs_inflated + s.cs_inflated;
    d.cs_words <- d.cs_words + s.cs_words;
    d.cs_rvc_words <- d.cs_rvc_words + s.cs_rvc_words;
    d.series_rev <- s.series_rev @ d.series_rev;
    d.series_n <- d.series_n + s.series_n;
    Obs_topk.merge ~into:d.topk s.topk;
    d.folded <- d.folded || s.folded

(* ------------------------------------------------------------------ *)
(* Consumers                                                          *)

let vc_walks (t : t) = match t with None -> 0 | Some e -> e.tot_vc
let inflated_now (t : t) = match t with None -> 0 | Some e -> e.cs_inflated

let accesses (t : t) =
  match t with
  | None -> 0
  | Some e -> e.tot_same + e.tot_epoch + e.tot_vc

let frac num den = if den <= 0 then 0. else float_of_int num /. float_of_int den

let fast_frac (t : t) =
  match t with
  | None -> 0.
  | Some e -> frac (e.tot_same + e.tot_epoch) (accesses t)

let same_epoch_frac (t : t) =
  match t with None -> 0. | Some e -> frac e.tot_same (accesses t)

let ranked_cells e =
  Hashtbl.fold (fun _ c acc -> (c, cell_total c) :: acc) e.cells []
  |> List.filter (fun (_, n) -> n > 0)
  |> List.sort (fun (a, na) (b, nb) ->
         match Int.compare nb na with
         | 0 -> compare a.c_name b.c_name
         | c -> c)

let hot_alist ?(k = 5) (t : t) =
  match t with
  | None -> []
  | Some e ->
    ranked_cells e
    |> List.filteri (fun i _ -> i < k)
    |> List.map (fun (c, n) -> (c.c_name, n))

let series (t : t) =
  match t with
  | None -> []
  | Some e ->
    let pts =
      List.rev e.series_rev
      |> List.stable_sort (fun (_, a, _, _) (_, b, _, _) ->
             Float.compare a b)
    in
    (* each view's points are cumulative for that view; the global
       cumulative at time t is the sum of each view's latest value *)
    let latest = Hashtbl.create 8 in
    List.map
      (fun (id, at, o1, vc) ->
        Hashtbl.replace latest id (o1, vc);
        let f, v =
          Hashtbl.fold
            (fun _ (f, v) (af, av) -> (af + f, av + v))
            latest (0, 0)
        in
        (at, f, v))
      pts

(* ------------------------------------------------------------------ *)
(* ftrace.prof/1                                                      *)

let rules_totals e =
  let n = Array.length e.rule_names in
  let totals = Array.make n 0 in
  Hashtbl.iter
    (fun _ c ->
      for i = 0 to min n (Array.length c.c_rules) - 1 do
        totals.(i) <- totals.(i) + c.c_rules.(i)
      done)
    e.cells;
  totals

let ever_inflated e =
  Hashtbl.fold
    (fun _ c acc -> if c.c_inflations > 0 then acc + 1 else acc)
    e.cells 0

let word_bytes = Sys.word_size / 8

let buckets_json buckets =
  Obs_json.arr
    (Array.to_list buckets
    |> List.mapi (fun i n -> (i, n))
    |> List.filter (fun (_, n) -> n > 0)
    |> List.map (fun (i, n) ->
           Obs_json.arr [ Obs_json.int i; Obs_json.int n ]))

let cell_json e ~count ~err c =
  let n = Array.length e.rule_names in
  let by_class cls =
    let acc = ref 0 in
    for i = 0 to min n (Array.length c.c_rules) - 1 do
      if e.rule_classes.(i) = cls then acc := !acc + c.c_rules.(i)
    done;
    !acc
  in
  let same = by_class Same_epoch
  and epoch = by_class Epoch
  and vc = by_class Vc in
  let ops = same + epoch + vc in
  Obs_json.obj
    [ ("var", Obs_json.str c.c_name);
      ("key", Obs_json.int c.c_key);
      ("ops", Obs_json.int ops);
      ("count", Obs_json.int count);
      ("count_err", Obs_json.int err);
      ("same_epoch", Obs_json.int same);
      ("epoch", Obs_json.int epoch);
      ("vc", Obs_json.int vc);
      ("fast_frac", Obs_json.float (frac (same + epoch) ops));
      ("inflations", Obs_json.int c.c_inflations);
      ("deflations", Obs_json.int c.c_deflations);
      ("inflated", Obs_json.bool c.c_inflated_now);
      ("rvc_words", Obs_json.int c.c_rvc_words);
      ("samples", Obs_json.int c.c_samples);
      ("ns_per_op",
       if c.c_samples = 0 then Obs_json.null
       else Obs_json.float (c.c_ns /. float_of_int c.c_samples)) ]

let top_vars_json e ~top =
  fold_topk e;
  Obs_topk.to_list e.topk
  |> List.filteri (fun i _ -> i < top)
  |> List.map (fun (key, count, err) ->
         match Hashtbl.find_opt e.cells key with
         | Some c -> cell_json e ~count ~err c
         | None ->
           (* streaming regime: the sketch tracks a key whose cell was
              never materialized here *)
           Obs_json.obj
             [ ("var", Obs_json.str (Printf.sprintf "key:%d" key));
               ("key", Obs_json.int key);
               ("ops", Obs_json.int count);
               ("count", Obs_json.int count);
               ("count_err", Obs_json.int err) ])

let document ?(source = "") ?(tool = "") ?(wall = 0.)
    ?(stats = []) ?(top = 20) (t : t) =
  let base =
    [ ("schema", Obs_json.str schema_version);
      ("source", Obs_json.str source);
      ("tool", Obs_json.str tool);
      ("wall_s", Obs_json.float wall) ]
  in
  match t with
  | None ->
    Obs_json.obj
      (base
      @ [ ("enabled", Obs_json.bool false);
          ("totals",
           Obs_json.obj [ ("accesses", Obs_json.int 0) ]) ])
  | Some e ->
    let acc = accesses t in
    let totals = rules_totals e in
    Obs_json.obj
      (base
      @ [ ("enabled", Obs_json.bool true);
          ("totals",
           Obs_json.obj
             [ ("accesses", Obs_json.int acc);
               ("same_epoch", Obs_json.int e.tot_same);
               ("epoch", Obs_json.int e.tot_epoch);
               ("vc", Obs_json.int e.tot_vc);
               ("fast_frac", Obs_json.float (fast_frac t));
               ("same_epoch_frac", Obs_json.float (same_epoch_frac t));
               ("sync_vc_ops", Obs_json.int e.sync_vc_ops) ]);
          ("rules",
           Obs_json.arr
             (Array.to_list
                (Array.mapi
                   (fun i name ->
                     Obs_json.obj
                       [ ("name", Obs_json.str name);
                         ("class",
                          Obs_json.str
                            (class_to_string e.rule_classes.(i)));
                         ("hits", Obs_json.int totals.(i)) ])
                   e.rule_names)));
          ("census",
           Obs_json.obj
             [ ("taken", Obs_json.bool e.census_taken);
               ("vars", Obs_json.int e.cs_vars);
               ("epoch_only",
                Obs_json.int (e.cs_vars - e.cs_inflated));
               ("inflated", Obs_json.int e.cs_inflated);
               ("ever_inflated", Obs_json.int (ever_inflated e));
               ("inflations", Obs_json.int e.tot_inflations);
               ("deflations", Obs_json.int e.tot_deflations);
               ("state_words", Obs_json.int e.cs_words);
               ("rvc_words", Obs_json.int e.cs_rvc_words);
               ("approx_bytes", Obs_json.int (e.cs_words * word_bytes)) ]);
          ("top_vars", Obs_json.arr (top_vars_json e ~top));
          ("topk",
           Obs_json.obj
             [ ("capacity", Obs_json.int (Obs_topk.capacity e.topk));
               ("size", Obs_json.int (Obs_topk.size e.topk));
               ("exact", Obs_json.bool (Obs_topk.is_exact e.topk));
               ("evictions", Obs_json.int (Obs_topk.evictions e.topk));
               ("dropped", Obs_json.int (Obs_topk.dropped e.topk)) ]);
          ("timing",
           Obs_json.obj
             [ ("stride", Obs_json.int e.stride);
               ("samples", Obs_json.int e.t_samples);
               ("fast_ns_log2", buckets_json e.buckets_fast);
               ("vc_ns_log2", buckets_json e.buckets_vc) ]);
          ("series_points", Obs_json.int e.series_n);
          ("stats",
           Obs_json.obj
             (List.map (fun (k, v) -> (k, Obs_json.int v)) stats)) ])

let write_file ~path ?source ?tool ?wall ?stats ?top t =
  let doc = document ?source ?tool ?wall ?stats ?top t in
  if path = "-" then begin
    Obs_json.to_channel stdout doc;
    print_newline ()
  end
  else begin
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        Obs_json.to_channel oc doc;
        output_char oc '\n')
  end

(* ------------------------------------------------------------------ *)
(* Human panel                                                        *)

let si n =
  let f = float_of_int n in
  if f >= 1e9 then Printf.sprintf "%.2fG" (f /. 1e9)
  else if f >= 1e6 then Printf.sprintf "%.2fM" (f /. 1e6)
  else if f >= 1e3 then Printf.sprintf "%.1fk" (f /. 1e3)
  else string_of_int n

let pct f = Printf.sprintf "%.1f%%" (100. *. f)

let bytes_si n =
  let f = float_of_int n in
  if f >= 1073741824. then Printf.sprintf "%.2f GiB" (f /. 1073741824.)
  else if f >= 1048576. then Printf.sprintf "%.2f MiB" (f /. 1048576.)
  else if f >= 1024. then Printf.sprintf "%.1f KiB" (f /. 1024.)
  else Printf.sprintf "%d B" n

(* Median bucket of a log2-ns histogram, as ~2^i ns; None when empty. *)
let median_ns buckets =
  let total = Array.fold_left ( + ) 0 buckets in
  if total = 0 then None
  else begin
    let half = (total + 1) / 2 in
    let rec go i seen =
      if i >= Array.length buckets then None
      else begin
        let seen = seen + buckets.(i) in
        if seen >= half then Some (1 lsl i) else go (i + 1) seen
      end
    in
    go 0 0
  end

let render ?(top = 10) ?(source = "") ?(tool = "") (t : t) =
  match t with
  | None -> [ "profile: disabled" ]
  | Some e ->
    let acc = accesses t in
    let header =
      Printf.sprintf "== profile: %s%s =="
        (if source = "" then "(run)" else source)
        (if tool = "" then "" else Printf.sprintf " [%s]" tool)
    in
    let totals_line =
      Printf.sprintf
        "accesses  %s | O(1) %s (same-epoch %s) | VC walks %s | sync-vc %s"
        (si acc)
        (pct (fast_frac t))
        (pct (same_epoch_frac t))
        (pct (frac e.tot_vc acc))
        (si e.sync_vc_ops)
    in
    let totals = rules_totals e in
    let rule_lines =
      Array.to_list
        (Array.mapi
           (fun i name ->
             Printf.sprintf "  %-18s %-10s %10s  %s" name
               (class_to_string e.rule_classes.(i))
               (si totals.(i))
               (pct (frac totals.(i) acc)))
           e.rule_names)
    in
    let census_line =
      if not e.census_taken then "census    (not taken)"
      else
        Printf.sprintf
          "census    %s vars | epoch-only %s (%s) | inflated now %d | \
           ever %d | inflations %d / deflations %d"
          (si e.cs_vars)
          (si (e.cs_vars - e.cs_inflated))
          (pct (frac (e.cs_vars - e.cs_inflated) e.cs_vars))
          e.cs_inflated (ever_inflated e) e.tot_inflations
          e.tot_deflations
    in
    let memory_line =
      if not e.census_taken then "shadow    (no census)"
      else
        Printf.sprintf "shadow    ~%s (read-VCs %s)"
          (bytes_si (e.cs_words * word_bytes))
          (bytes_si (e.cs_rvc_words * word_bytes))
    in
    let timing_line =
      let med label buckets =
        match median_ns buckets with
        | None -> Printf.sprintf "%s ~-" label
        | Some ns -> Printf.sprintf "%s ~%sns" label (si ns)
      in
      Printf.sprintf "timing    %s samples @ stride %d | %s | %s"
        (si e.t_samples) e.stride
        (med "O(1) p50" e.buckets_fast)
        (med "vc p50" e.buckets_vc)
    in
    let topk_note =
      if Obs_topk.is_exact e.topk then "exact"
      else
        Printf.sprintf "approx: %d evictions, max dropped %d"
          (Obs_topk.evictions e.topk)
          (Obs_topk.dropped e.topk)
    in
    fold_topk e;
    let var_header =
      Printf.sprintf "top variables by detector ops (%s):" topk_note
    in
    let var_lines =
      Obs_topk.to_list e.topk
      |> List.filteri (fun i _ -> i < top)
      |> List.mapi (fun i (key, count, _) ->
             match Hashtbl.find_opt e.cells key with
             | None ->
               Printf.sprintf "  %2d  key:%-10d %10s" (i + 1) key
                 (si count)
             | Some c ->
               let n = Array.length e.rule_names in
               let vc = ref 0 in
               for j = 0 to min n (Array.length c.c_rules) - 1 do
                 if e.rule_classes.(j) = Vc then
                   vc := !vc + c.c_rules.(j)
               done;
               let ops = cell_total c in
               Printf.sprintf
                 "  %2d  %-12s %10s  fast %-6s vc %-6s infl %d%s%s"
                 (i + 1) c.c_name (si ops)
                 (pct (frac (ops - !vc) ops))
                 (si !vc) c.c_inflations
                 (if c.c_inflated_now then " [inflated]" else "")
                 (if c.c_samples > 0 then
                    Printf.sprintf "  ~%.0fns/op"
                      (c.c_ns /. float_of_int c.c_samples)
                  else ""))
    in
    (header :: totals_line :: rule_lines)
    @ [ census_line; memory_line; timing_line; var_header ]
    @ var_lines
