(* State and rendering for `ftrace watch`: fold ftrace.live/1 NDJSON
   lines into a watch state, render it as a self-updating terminal
   panel (or one line per record for dumb sinks).

   Pure string-out rendering — the CLI owns the tailing loop, the
   terminal and the redraw escapes — so the panel is testable by
   feeding records and asserting on substrings. *)

module J = Obs_json_read

type t = {
  (* header *)
  mutable source : string;
  mutable tool : string;
  mutable total : int;
  (* latest record *)
  mutable seq : int;
  mutable at : float;
  mutable phase : string;
  mutable cum_events : int;
  mutable cum : Obs_snapshot.counts;  (* summed deltas *)
  mutable evps : float;
  mutable fast_frac : float;
  mutable imbalance : float;
  mutable heap_words : int;
  mutable workers : (int * int) list;  (* id, events *)
  mutable rules : (string * int) list;
  mutable vars : (string * int) list;  (* hot variables (profiling runs) *)
  (* sparkline history of evps, oldest first, bounded *)
  mutable rates : float list;
  (* final record *)
  mutable final : bool;
  mutable warnings : int;
  mutable wall : float;
}

let create () =
  { source = "";
    tool = "";
    total = 0;
    seq = 0;
    at = 0.;
    phase = "";
    cum_events = 0;
    cum = Obs_snapshot.zero;
    evps = 0.;
    fast_frac = 0.;
    imbalance = 1.;
    heap_words = 0;
    workers = [];
    rules = [];
    vars = [];
    rates = [];
    final = false;
    warnings = 0;
    wall = 0. }

let sparkline_window = 32

let counts_of_json j =
  { Obs_snapshot.events = J.int j "events";
    reads = J.int j "reads";
    writes = J.int j "writes";
    syncs = J.int j "syncs";
    eliminated = J.int j "eliminated";
    epoch_ops = J.int j "epoch_ops";
    vc_ops = J.int j "vc_ops";
    state_words = J.int j "state_words";
    warnings = J.int j "warnings" }

let alist_of_json field j =
  match Option.bind (J.member field j) J.to_obj with
  | None -> []
  | Some fields ->
    List.filter_map
      (fun (k, v) -> Option.map (fun n -> (k, n)) (J.to_int v))
      fields
    |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

let rules_of_json j = alist_of_json "rules" j
let vars_of_json j = alist_of_json "top_vars" j

(* Fold one parsed NDJSON line in.  Unknown lines are ignored (forward
   compatibility within the /1 major). *)
let feed t (j : J.t) =
  match J.member "schema" j with
  | Some _ ->
    t.source <- J.str j "source";
    t.tool <- J.str j "tool";
    t.total <- J.int j "total_events"
  | None ->
    t.seq <- J.int ~default:t.seq j "seq";
    t.at <- J.num ~default:t.at j "at_s";
    t.phase <- J.str ~default:t.phase j "phase";
    t.cum_events <- J.int ~default:t.cum_events j "cum_events";
    if J.bool j "final" then begin
      t.final <- true;
      t.phase <- "done";
      t.warnings <- J.int j "warnings";
      t.wall <- J.num j "wall_s";
      (match J.member "cum" j with
      | Some cum ->
        t.cum <-
          { (counts_of_json cum) with
            Obs_snapshot.warnings = t.warnings }
      | None -> ());
      (match rules_of_json j with [] -> () | rs -> t.rules <- rs);
      match vars_of_json j with [] -> () | vs -> t.vars <- vs
    end
    else begin
      (match J.member "d" j with
      | Some d -> t.cum <- Obs_snapshot.add t.cum (counts_of_json d)
      | None -> ());
      t.evps <- J.num j "evps";
      t.fast_frac <- J.num j "fast_frac";
      t.imbalance <- J.num ~default:1. j "imbalance";
      t.heap_words <- J.int ~default:t.heap_words j "heap_words";
      (match rules_of_json j with [] -> () | rs -> t.rules <- rs);
      (match vars_of_json j with [] -> () | vs -> t.vars <- vs);
      (match Option.bind (J.member "workers" j) J.to_arr with
      | None | Some [] -> ()
      | Some ws ->
        t.workers <-
          List.map (fun w -> (J.int w "id", J.int w "events")) ws);
      t.rates <- t.rates @ [ t.evps ];
      let extra = List.length t.rates - sparkline_window in
      if extra > 0 then t.rates <- List.filteri (fun i _ -> i >= extra) t.rates
    end

let feed_line t line =
  match String.trim line with
  | "" -> ()
  | trimmed -> Option.iter (feed t) (J.parse_opt trimmed)

let final t = t.final
let warnings t = t.warnings
let seq t = t.seq

(* ------------------------------------------------------------------ *)
(* Rendering helpers                                                  *)

let si n =
  let f = float_of_int n in
  if f >= 1e9 then Printf.sprintf "%.2fG" (f /. 1e9)
  else if f >= 1e6 then Printf.sprintf "%.2fM" (f /. 1e6)
  else if f >= 1e3 then Printf.sprintf "%.1fk" (f /. 1e3)
  else string_of_int n

let si_f f =
  if Float.is_finite f && f >= 0. then si (int_of_float f) else "-"

let pct f = Printf.sprintf "%.1f%%" (100. *. f)

let bar ~width frac =
  let frac = Float.max 0. (Float.min 1. frac) in
  let full = int_of_float (frac *. float_of_int width) in
  String.concat ""
    [ String.make full '#'; String.make (width - full) '-' ]

let spark rates =
  (* ASCII sparkline: eight levels, scaled to the window max *)
  let glyphs = [| '.'; ':'; '-'; '='; '+'; '*'; '%'; '@' |] in
  match rates with
  | [] -> ""
  | rs ->
    let mx = List.fold_left Float.max 0. rs in
    if mx <= 0. then String.make (List.length rs) '.'
    else
      String.init (List.length rs) (fun i ->
          let r = List.nth rs i in
          let lvl =
            int_of_float (r /. mx *. 7.99) |> max 0 |> min 7
          in
          glyphs.(lvl))

let fmt_eta seconds =
  if seconds <= 0. then "--"
  else if seconds < 60. then Printf.sprintf "%.0fs" seconds
  else Printf.sprintf "%dm%02ds"
         (int_of_float seconds / 60)
         (int_of_float seconds mod 60)

let snapshot_of t =
  { Obs_snapshot.empty with
    at = t.at;
    phase = t.phase;
    counts = t.cum;
    workers =
      Array.of_list
        (List.map
           (fun (id, ev) -> { Obs_snapshot.w_id = id; w_events = ev })
           t.workers) }

(* One line per record, for non-TTY sinks and `watch --once`. *)
let render_line t =
  let snap = snapshot_of t in
  Printf.sprintf
    "[%7.2fs] %-8s %6s ev (%s) %9s ev/s  fast %s  warn %d"
    t.at t.phase (si t.cum_events)
    (if t.total > 0 then pct (Obs_snapshot.progress ~total:t.total snap)
     else "?")
    (si_f t.evps) (pct t.fast_frac) t.cum.Obs_snapshot.warnings

(* The full panel, as a list of lines (no trailing newline). *)
let render_panel ?(width = 72) t =
  let snap = snapshot_of t in
  let inner = max 20 (width - 24) in
  let title =
    Printf.sprintf "ftrace watch — %s%s"
      (if t.source = "" then "(run)" else t.source)
      (if t.tool = "" then "" else Printf.sprintf " [%s]" t.tool)
  in
  let progress_line =
    if t.total > 0 then
      let frac = Obs_snapshot.progress ~total:t.total snap in
      Printf.sprintf "%-9s [%s] %s  ETA %s" t.phase
        (bar ~width:inner frac) (pct frac)
        (if t.final then "done"
         else fmt_eta (Obs_snapshot.eta ~total:t.total snap))
    else Printf.sprintf "%-9s %s events" t.phase (si t.cum_events)
  in
  let rate_line =
    Printf.sprintf "rate      %9s ev/s  %s" (si_f t.evps)
      (spark t.rates)
  in
  let paths_line =
    Printf.sprintf
      "paths     fast %s   imbalance %.2f   heap %s words"
      (pct t.fast_frac) t.imbalance (si t.heap_words)
  in
  let counters_line =
    Printf.sprintf
      "counters  rd %s  wr %s  sync %s  elim %s  state %s w"
      (si t.cum.Obs_snapshot.reads) (si t.cum.Obs_snapshot.writes)
      (si t.cum.Obs_snapshot.syncs) (si t.cum.Obs_snapshot.eliminated)
      (si t.cum.Obs_snapshot.state_words)
  in
  let warn_line =
    let rules =
      match t.rules with
      | [] -> "(no hits yet)"
      | rs ->
        List.filteri (fun i _ -> i < 3) rs
        |> List.map (fun (name, n) -> Printf.sprintf "%s:%d" name n)
        |> String.concat "  "
    in
    Printf.sprintf "warnings  %d   %s" t.cum.Obs_snapshot.warnings rules
  in
  (* hot variables, mirroring the top-rules treatment; absent unless
     the run is profiling (--profile / ftrace profile) *)
  let vars_lines =
    match t.vars with
    | [] -> []
    | vs ->
      [ Printf.sprintf "hot vars  %s"
          (List.filteri (fun i _ -> i < 4) vs
          |> List.map (fun (name, n) -> Printf.sprintf "%s:%s" name (si n))
          |> String.concat "  ") ]
  in
  let worker_lines =
    match t.workers with
    | [] | [ _ ] -> []
    | ws ->
      let mx =
        List.fold_left (fun a (_, ev) -> max a ev) 1 ws
      in
      List.map
        (fun (id, ev) ->
          Printf.sprintf "  w%-2d [%s] %s" id
            (bar ~width:(inner / 2)
               (float_of_int ev /. float_of_int mx))
            (si ev))
        ws
  in
  let tail =
    if t.final then
      [ Printf.sprintf "done      %d warning(s) in %.2fs wall"
          t.warnings t.wall ]
    else []
  in
  (title :: progress_line :: rate_line :: paths_line :: counters_line
   :: warn_line :: vars_lines)
  @ worker_lines @ tail
