(** Minimal JSON reader, the inverse of {!Obs_json} (no JSON library
    in the image).  Consumers: [ftrace watch] (ftrace.live/1 NDJSON),
    [bench history] (benchmark documents), and the test suite's schema
    assertions.

    Numbers are parsed as floats (JSON has one number type); use
    {!to_int}/{!int} for counters, which our writers always emit
    integrally. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> t
(** @raise Parse_error on malformed input (with an offset). *)

val parse_opt : string -> t option

(** {2 Accessors} *)

val member : string -> t -> t option
(** Field lookup; [None] for missing fields and non-objects. *)

val to_num : t -> float option
val to_int : t -> int option
val to_str : t -> string option
val to_arr : t -> t list option
val to_obj : t -> (string * t) list option
val to_bool : t -> bool option

(** {2 Defaulted field lookup (object + field name)} *)

val num : ?default:float -> t -> string -> float
val int : ?default:int -> t -> string -> int
val str : ?default:string -> t -> string -> string
val bool : ?default:bool -> t -> string -> bool
