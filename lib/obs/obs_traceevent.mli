(** Chrome trace-event export of the span timeline.

    Renders an enabled {!Obs.t}'s span sink — the [plan] /
    [parallel.region] / [shard-N] / [merge] / [analyze] phase spans
    plus the zero-duration [race] instants recorded by [Race_log] —
    as a Trace Event Format JSON document loadable in Perfetto
    ([https://ui.perfetto.dev]) or [chrome://tracing].  Shard spans
    land on their own timeline rows, so the load imbalance the
    [shards:] line summarizes as a single ratio becomes a visible gap:
    an idle shard is literally white space on the timeline.

    Mapping:
    - a span becomes one complete event ([ph = "X"]) with
      microsecond [ts]/[dur] relative to the sink's epoch;
    - a span named [shard-N] is placed on virtual thread [N + 1]
      (named ["shard N"]); everything else rides on thread 0
      (["driver"]);
    - a zero-duration span named [race] becomes a global instant
      event ([ph = "i", s = "g"]) — a vertical marker at the moment
      the warning was recorded, carrying the variable, trace index
      and race kind in [args];
    - span attributes become the event's [args];
    - when a shadow-state profiler handle is supplied ([?prof]), its
      sampled series becomes two counter tracks ([ph = "C"]):
      [prof.o1_ops] and [prof.vc_ops], cumulative attributed ops whose
      slopes visualize the fast-path share over time next to the
      phase spans.

    The document carries [otherData.schema = "ftrace.trace/1"]. *)

val schema_version : string

val document : ?prof:Obs_prof.t -> Obs.t -> Obs_json.t
(** The full trace document.  A disabled handle yields a valid
    document with an empty [traceEvents] array. *)

val to_string : ?prof:Obs_prof.t -> Obs.t -> string

val write_file : path:string -> ?prof:Obs_prof.t -> Obs.t -> unit
(** Writes {!document} to [path]; [path = "-"] writes to stdout. *)
