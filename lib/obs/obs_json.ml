type t = Buffer.t -> unit

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let str s b =
  Buffer.add_char b '"';
  Buffer.add_string b (escape s);
  Buffer.add_char b '"'

let int n b = Buffer.add_string b (string_of_int n)

let float f b =
  if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.6g" f)
  else Buffer.add_string b "null"

let bool v b = Buffer.add_string b (if v then "true" else "false")
let null b = Buffer.add_string b "null"

let seq ~op ~cl items render b =
  Buffer.add_char b op;
  List.iteri
    (fun i item ->
      if i > 0 then Buffer.add_char b ',';
      render item b)
    items;
  Buffer.add_char b cl

let arr items = seq ~op:'[' ~cl:']' items (fun v b -> v b)

let obj fields =
  seq ~op:'{' ~cl:'}' fields (fun (k, v) b ->
      str k b;
      Buffer.add_char b ':';
      v b)

let to_string v =
  let b = Buffer.create 256 in
  v b;
  Buffer.contents b

let to_channel oc v =
  let b = Buffer.create 4096 in
  v b;
  Buffer.output_buffer oc b
