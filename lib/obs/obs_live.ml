(* Live telemetry bus: in-flight snapshot streaming (ftrace.live/1).

   Shape of the thing:

   - each analysis worker holds a [pub] (one per worker id); every
     [tick_events] events it flattens its *own* counters into an
     immutable Obs_snapshot partial and publishes it with one atomic
     store.  The gate is either a countdown ticker closure wrapped
     around the hot loop ([pub_ticker], sharded loops) or — cheaper,
     for loops the driver can re-chunk — iteration in tick-sized
     windows with a publish between windows ([pub_chunk], the
     sequential driver).  No locks, no cross-domain reads of mutable
     detector state — partials are built on the domain that owns the
     counters;
   - a collector — the calling thread itself for sequential runs
     (piggy-backed on the publish), a dedicated domain for parallel
     regions ([with_collector]) — merges the latest partials at the
     configured period and appends one delta-encoded NDJSON record to
     the sink;
   - [finish] emits a final record carrying the run's exact cumulative
     counters (the same [Stats.fields_alist] the --metrics exporter
     writes), so a consumer can cross-check the stream against the
     ftrace.obs/1 document to the last integer.

   The disabled handle follows the one-branch idiom of [Obs]: drivers
   select the instrumented closure once, outside the loop, so a run
   without --live pays nothing per event. *)

let schema_version = "ftrace.live/1"

type worker_pub = {
  wp_id : int;
  wp_slot : Obs_snapshot.t option Atomic.t;
  wp_tick_events : int;
  (* worker-local accumulation; only the owning domain touches it *)
  mutable wp_done : Obs_snapshot.counts;  (* completed detector instances *)
  mutable wp_rules : (string * int) list; (* merged rules of the same *)
  mutable wp_vars : (string * int) list;  (* merged hot-var standings *)
  mutable wp_countdown : int;
}

type enabled = {
  sink : out_channel;
  owns_sink : bool;
  period : float;
  tick_events : int;
  total : int;
  start : float;  (* monotonic epoch of the bus *)
  mu : Mutex.t;
  mutable seq : int;
  mutable last : Obs_snapshot.t;  (* last emitted merged snapshot *)
  mutable last_emit_at : float;
  mutable phase : string;
  mutable base : Obs_snapshot.counts;
      (* counters not owned by any worker: the stealing prefix's
         timeline replay and routed-out eliminated accesses *)
  mutable pubs : worker_pub list;
  mutable finished : bool;
}

type t = enabled option
type pub = (enabled * worker_pub) option

let disabled : t = None
let pub_disabled : pub = None
let is_enabled = Option.is_some

(* ------------------------------------------------------------------ *)
(* Sink specs: FILE | - | fd:N                                        *)

let open_sink spec =
  if spec = "-" then Ok (stdout, false)
  else if String.length spec > 3 && String.sub spec 0 3 = "fd:" then
    match int_of_string_opt (String.sub spec 3 (String.length spec - 3)) with
    | Some fd when fd >= 0 ->
      Ok
        ( Unix.out_channel_of_descr
            (Obj.magic (fd : int) : Unix.file_descr),
          true )
    | _ -> Error (Printf.sprintf "%s: malformed fd spec" spec)
  else
    match open_out spec with
    | oc -> Ok (oc, true)
    | exception Sys_error msg -> Error msg

(* ------------------------------------------------------------------ *)

let now_of e = Obs_clock.now () -. e.start

let write_line e json =
  Obs_json.to_channel e.sink json;
  output_char e.sink '\n';
  flush e.sink

let header ?(source = "") ?(tool = "") e =
  Obs_json.obj
    [ ("schema", Obs_json.str schema_version);
      ("source", Obs_json.str source);
      ("tool", Obs_json.str tool);
      ("total_events", Obs_json.int e.total);
      ("period_s", Obs_json.float e.period);
      ("tick_events", Obs_json.int e.tick_events);
      ("host",
       Obs_json.obj [ ("cores", Obs_json.int (Obs_cores.recommended ())) ])
    ]

let create ?(period = 0.05) ?(tick_events = 8192) ?(total = 0) ?source
    ?tool ~sink ~owns_sink () : t =
  let e =
    { sink;
      owns_sink;
      period = Float.max 0. period;
      tick_events = max 1 tick_events;
      total;
      start = Obs_clock.now ();
      mu = Mutex.create ();
      seq = 0;
      last = Obs_snapshot.empty;
      last_emit_at = neg_infinity;
      phase = "start";
      base = Obs_snapshot.zero;
      pubs = [];
      finished = false }
  in
  write_line e (header ?source ?tool e);
  Some e

(* ------------------------------------------------------------------ *)
(* Record encoding                                                    *)

let counts_json (c : Obs_snapshot.counts) =
  Obs_json.obj
    [ ("events", Obs_json.int c.Obs_snapshot.events);
      ("reads", Obs_json.int c.Obs_snapshot.reads);
      ("writes", Obs_json.int c.Obs_snapshot.writes);
      ("syncs", Obs_json.int c.Obs_snapshot.syncs);
      ("eliminated", Obs_json.int c.Obs_snapshot.eliminated);
      ("epoch_ops", Obs_json.int c.Obs_snapshot.epoch_ops);
      ("vc_ops", Obs_json.int c.Obs_snapshot.vc_ops);
      ("state_words", Obs_json.int c.Obs_snapshot.state_words);
      ("warnings", Obs_json.int c.Obs_snapshot.warnings) ]

let workers_json ws =
  Obs_json.arr
    (Array.to_list
       (Array.map
          (fun (w : Obs_snapshot.worker) ->
            Obs_json.obj
              [ ("id", Obs_json.int w.Obs_snapshot.w_id);
                ("events", Obs_json.int w.Obs_snapshot.w_events) ])
          ws))

let record_json e (snap : Obs_snapshot.t) =
  let delta = Obs_snapshot.sub snap.counts e.last.Obs_snapshot.counts in
  Obs_json.obj
    [ ("seq", Obs_json.int e.seq);
      ("at_s", Obs_json.float snap.at);
      ("phase", Obs_json.str snap.phase);
      ("cum_events", Obs_json.int (Obs_snapshot.events_seen snap));
      ("d", counts_json delta);
      ("evps", Obs_json.float (Obs_snapshot.rate ~prev:e.last snap));
      ("fast_frac", Obs_json.float (Obs_snapshot.fast_path_frac snap));
      ("imbalance", Obs_json.float (Obs_snapshot.imbalance snap));
      ("heap_words", Obs_json.int snap.heap_words);
      (* rules are cumulative, not delta-encoded: the alist is a
         handful of entries and consumers want the standings as-is *)
      ("rules",
       Obs_json.obj
         (List.map (fun (k, v) -> (k, Obs_json.int v)) snap.rules));
      (* hot-variable standings (profiling runs only), top 8 of the
         merged per-worker lists — same shape as rules *)
      ("top_vars",
       Obs_json.obj
         (List.filteri (fun i _ -> i < 8) snap.vars
         |> List.map (fun (k, v) -> (k, Obs_json.int v))));
      ("workers", workers_json snap.workers) ]

(* ------------------------------------------------------------------ *)
(* Collector: merge latest partials, emit if the period elapsed.      *)

let merged e =
  let partials =
    List.filter_map (fun p -> Atomic.get p.wp_slot) e.pubs
  in
  let base = { Obs_snapshot.empty with counts = e.base } in
  let snap =
    Obs_snapshot.merge ~at:(now_of e) ~phase:e.phase (base :: partials)
  in
  { snap with
    heap_words = (Gc.quick_stat ()).Gc.heap_words }

(* Caller holds e.mu. *)
let emit_locked ?(force = false) e =
  if not e.finished then begin
    let snap = merged e in
    let progressed =
      Obs_snapshot.events_seen snap
      > Obs_snapshot.events_seen e.last
      || snap.Obs_snapshot.phase <> e.last.Obs_snapshot.phase
    in
    if force || progressed then begin
      e.seq <- e.seq + 1;
      write_line e (record_json e snap);
      e.last <- snap;
      e.last_emit_at <- snap.Obs_snapshot.at
    end
  end

let step e =
  if now_of e -. e.last_emit_at >= e.period then begin
    Mutex.lock e.mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock e.mu)
      (fun () ->
        if now_of e -. e.last_emit_at >= e.period then emit_locked e)
  end

(* ------------------------------------------------------------------ *)
(* Publishers (one per worker)                                        *)

let publisher (t : t) ~worker : pub =
  match t with
  | None -> None
  | Some e ->
    let p =
      { wp_id = worker;
        wp_slot = Atomic.make None;
        wp_tick_events = e.tick_events;
        wp_done = Obs_snapshot.zero;
        wp_rules = [];
        wp_vars = [];
        wp_countdown = e.tick_events }
    in
    Mutex.lock e.mu;
    e.pubs <- p :: e.pubs;
    Mutex.unlock e.mu;
    Some (e, p)

let publish p =
  match p with
  | None -> ()
  | Some (_, wp) ->
    let c = wp.wp_done in
    Atomic.set wp.wp_slot
      (Some
         { Obs_snapshot.empty with
           counts = c;
           rules = wp.wp_rules;
           vars = wp.wp_vars;
           workers =
             [| { Obs_snapshot.w_id = wp.wp_id;
                  w_events = c.Obs_snapshot.events + c.Obs_snapshot.eliminated } |] })

(* The publish slow path shared by both ticker shapes: merge the
   worker's folded-in counts with its in-flight instance, stamp the
   rule (and hot-variable) standings, swap the partial into the
   collector-visible slot. *)
let tick_publish e wp rules vars ~current ~standalone =
  let c = Obs_snapshot.add wp.wp_done (current ()) in
  let rs =
    match rules with
    | None -> wp.wp_rules
    | Some f -> Obs_snapshot.merge_rules [ wp.wp_rules; f () ]
  in
  let vs =
    match vars with
    | None -> wp.wp_vars
    | Some f -> Obs_snapshot.merge_rules [ wp.wp_vars; f () ]
  in
  Atomic.set wp.wp_slot
    (Some
       { Obs_snapshot.empty with
         counts = c;
         rules = rs;
         vars = vs;
         workers =
           [| { Obs_snapshot.w_id = wp.wp_id;
                w_events =
                  c.Obs_snapshot.events + c.Obs_snapshot.eliminated } |] });
  if standalone then step e

let pub_ticker ?(standalone = false) ?rules ?vars (p : pub)
    ~(current : unit -> Obs_snapshot.counts) : (unit -> unit) option =
  match p with
  | None -> None
  | Some (e, wp) ->
    Some
      (fun () ->
        wp.wp_countdown <- wp.wp_countdown - 1;
        if wp.wp_countdown <= 0 then begin
          wp.wp_countdown <- wp.wp_tick_events;
          tick_publish e wp rules vars ~current ~standalone
        end)

let pub_chunk ?(standalone = false) ?rules ?vars (p : pub)
    ~(current : unit -> Obs_snapshot.counts) : (int * (unit -> unit)) option
    =
  match p with
  | None -> None
  | Some (e, wp) ->
    (* Zero-per-event alternative for drivers that own their loop: the
       caller iterates in chunks of [tick_events] events and invokes
       the returned thunk between chunks, so the hot loop itself stays
       exactly the uninstrumented one — no wrapper closure, no
       countdown, no index check.  Sharded loops can't re-chunk their
       index subsequences and keep {!pub_ticker}. *)
    Some
      ( max 1 wp.wp_tick_events,
        fun () -> tick_publish e wp rules vars ~current ~standalone )

let pub_fold ?(vars = []) (p : pub) ~(counts : Obs_snapshot.counts)
    ~(rules : (string * int) list) =
  match p with
  | None -> ()
  | Some (_, wp) ->
    wp.wp_done <- Obs_snapshot.add wp.wp_done counts;
    wp.wp_rules <- Obs_snapshot.merge_rules [ wp.wp_rules; rules ];
    wp.wp_vars <- Obs_snapshot.merge_rules [ wp.wp_vars; vars ];
    publish p

(* ------------------------------------------------------------------ *)
(* Phases, bases, the collector domain                                *)

let set_phase (t : t) phase =
  match t with
  | None -> ()
  | Some e ->
    Mutex.lock e.mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock e.mu)
      (fun () ->
        if e.phase <> phase then begin
          e.phase <- phase;
          emit_locked ~force:true e
        end)

let set_base (t : t) counts =
  match t with
  | None -> ()
  | Some e ->
    Mutex.lock e.mu;
    e.base <- counts;
    Mutex.unlock e.mu

let with_collector (t : t) f =
  match t with
  | None -> f ()
  | Some e ->
    let stop = Atomic.make false in
    (* Poll finer than the period so shutdown is prompt; [step] itself
       gates emission on the period. *)
    let pause = Float.max 0.002 (Float.min e.period 0.02) in
    let dom =
      Domain.spawn (fun () ->
          while not (Atomic.get stop) do
            Unix.sleepf pause;
            step e
          done)
    in
    Fun.protect
      ~finally:(fun () ->
        Atomic.set stop true;
        Domain.join dom)
      f

(* ------------------------------------------------------------------ *)
(* Final record                                                       *)

let finish ?(top_vars = []) (t : t) ~wall ~(fields : (string * int) list)
    ~(rules : (string * int) list) ~warnings =
  match t with
  | None -> ()
  | Some e ->
    Mutex.lock e.mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock e.mu)
      (fun () ->
        if not e.finished then begin
          e.seq <- e.seq + 1;
          let fld name =
            Option.value ~default:0 (List.assoc_opt name fields)
          in
          let cum_events = fld "events" + fld "eliminated" in
          (* the closing delta bridges the last periodic snapshot to
             the exact final counters, so summing a stream's "d"
             objects reproduces the cumulative totals — the loss-free
             property Obs_snapshot documents *)
          let final_counts =
            { Obs_snapshot.events = fld "events";
              reads = fld "reads";
              writes = fld "writes";
              syncs = fld "syncs";
              eliminated = fld "eliminated";
              epoch_ops = fld "epoch_ops";
              vc_ops = fld "vc_ops";
              state_words = fld "state_words";
              warnings }
          in
          let delta =
            Obs_snapshot.sub final_counts e.last.Obs_snapshot.counts
          in
          write_line e
            (Obs_json.obj
               [ ("seq", Obs_json.int e.seq);
                 ("at_s", Obs_json.float (now_of e));
                 ("phase", Obs_json.str "done");
                 ("final", Obs_json.bool true);
                 ("cum_events", Obs_json.int cum_events);
                 ("d", counts_json delta);
                 ("cum",
                  Obs_json.obj
                    (List.map (fun (k, v) -> (k, Obs_json.int v)) fields));
                 ("rules",
                  Obs_json.obj
                    (List.map (fun (k, v) -> (k, Obs_json.int v)) rules));
                 ("top_vars",
                  Obs_json.obj
                    (List.filteri (fun i _ -> i < 8) top_vars
                    |> List.map (fun (k, v) -> (k, Obs_json.int v))));
                 ("warnings", Obs_json.int warnings);
                 ("wall_s", Obs_json.float wall) ]);
          e.finished <- true
        end)

let close (t : t) =
  match t with
  | None -> ()
  | Some e ->
    flush e.sink;
    if e.owns_sink then close_out_noerr e.sink
