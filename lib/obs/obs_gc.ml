type sample = {
  at : float;
  minor_words : float;
  major_words : float;
  heap_words : int;
  top_heap_words : int;
  live_words : int;
  minor_collections : int;
  major_collections : int;
  full : bool;
}

type t = {
  epoch : float;
  every : int;
  mutable countdown : int;
  mutable recorded : sample list;  (* reverse chronological *)
  mu : Mutex.t;
}

let create ?(every = 65536) () =
  let every = max 1 every in
  { epoch = Unix.gettimeofday ();
    every;
    countdown = every;
    recorded = [];
    mu = Mutex.create () }

let of_stat t ~full (st : Gc.stat) =
  { at = Unix.gettimeofday () -. t.epoch;
    minor_words = st.Gc.minor_words;
    major_words = st.Gc.major_words;
    heap_words = st.Gc.heap_words;
    top_heap_words = st.Gc.top_heap_words;
    live_words = st.Gc.live_words;
    minor_collections = st.Gc.minor_collections;
    major_collections = st.Gc.major_collections;
    full }

let push t s =
  Mutex.lock t.mu;
  t.recorded <- s :: t.recorded;
  Mutex.unlock t.mu

let sample_now t = push t (of_stat t ~full:false (Gc.quick_stat ()))
let sample_full t = push t (of_stat t ~full:true (Gc.stat ()))

let tick t =
  t.countdown <- t.countdown - 1;
  if t.countdown <= 0 then begin
    t.countdown <- t.every;
    sample_now t
  end

let samples t =
  Mutex.lock t.mu;
  let ss = t.recorded in
  Mutex.unlock t.mu;
  List.rev ss

let to_json t =
  Obs_json.arr
    (List.map
       (fun s ->
         Obs_json.obj
           [ ("at_s", Obs_json.float s.at);
             ("minor_words", Obs_json.float s.minor_words);
             ("major_words", Obs_json.float s.major_words);
             ("heap_words", Obs_json.int s.heap_words);
             ("top_heap_words", Obs_json.int s.top_heap_words);
             ("live_words", Obs_json.int s.live_words);
             ("minor_collections", Obs_json.int s.minor_collections);
             ("major_collections", Obs_json.int s.major_collections);
             ("full", Obs_json.bool s.full) ])
       (samples t))
