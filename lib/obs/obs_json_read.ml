(* A minimal recursive-descent JSON reader.

   The image ships no JSON library, and until now the only parser in
   the tree lived in test/test_obs.ml — fine while JSON was only ever
   *written* by the tools.  The live telemetry bus changes that:
   `ftrace watch` consumes ftrace.live/1 NDJSON records and
   `bench history` re-reads its own benchmark documents, so the reader
   moves into ft_obs next to the writer (Obs_json) it mirrors. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let peek () = if !pos < n then s.[!pos] else fail "unexpected end" in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n then
      match s.[!pos] with
      | ' ' | '\t' | '\n' | '\r' ->
        advance ();
        skip_ws ()
      | _ -> ()
  in
  let expect c =
    if peek () <> c then fail (Printf.sprintf "expected %C" c);
    advance ()
  in
  let lit word v =
    String.iter (fun c -> expect c) word;
    v
  in
  let string_body () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          (* decode \uXXXX as a raw byte: enough for the ASCII range
             our own escaper (Obs_json.escape) ever emits *)
          if !pos + 4 >= n then fail "truncated \\u escape";
          let hex = String.sub s (!pos + 1) 4 in
          advance ();
          advance ();
          advance ();
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code -> Buffer.add_char b (Char.chr (code land 0xff))
          | None -> fail "bad \\u escape")
        | c -> Buffer.add_char b c);
        advance ();
        go ()
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    if start = !pos then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = string_body () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            fields ((k, v) :: acc)
          | '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            items (v :: acc)
          | ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (items [])
      end
    | '"' -> Str (string_body ())
    | 't' -> lit "true" (Bool true)
    | 'f' -> lit "false" (Bool false)
    | 'n' -> lit "null" Null
    | _ -> Num (number ())
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_opt s = try Some (parse s) with Parse_error _ -> None

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_num = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_arr = function Arr a -> Some a | _ -> None
let to_obj = function Obj o -> Some o | _ -> None
let to_bool = function Bool b -> Some b | _ -> None

let to_int j =
  match to_num j with
  | Some f when Float.is_finite f -> Some (int_of_float f)
  | _ -> None

let num ?(default = 0.) j name =
  match Option.bind (member name j) to_num with
  | Some f -> f
  | None -> default

let int ?(default = 0) j name =
  match Option.bind (member name j) to_int with
  | Some i -> i
  | None -> default

let str ?(default = "") j name =
  match Option.bind (member name j) to_str with
  | Some s -> s
  | None -> default

let bool ?(default = false) j name =
  match Option.bind (member name j) to_bool with
  | Some b -> b
  | None -> default
