type op = Read | Write

type entry = {
  e_index : int;
  e_tid : int;
  e_op : op;
  e_epoch : int;
  e_clock : int;
  e_locks : int array;
}

(* One per-key ring.  [buf] is a circular buffer of the last [<= cap]
   entries; [next] is the slot the next record goes to; [len] saturates
   at the capacity. *)
type ring = {
  mutable buf : entry array;  (* length = capacity once first used *)
  mutable next : int;
  mutable len : int;
}

type enabled = {
  cap : int;
  rings : (int, ring) Hashtbl.t;
  (* held locks per thread, innermost first (cons order); grown on
     demand.  A list is the right structure: lock nesting depth is
     tiny in practice and release-of-innermost is the common case. *)
  mutable held : int list array;
  mutable total : int;    (* accesses recorded, ever *)
  mutable dropped : int;  (* entries overwritten by wraparound *)
}

type t = enabled option

let disabled = None
let default_capacity = 8

let create ?(capacity = default_capacity) () =
  Some
    { cap = max 1 capacity;
      rings = Hashtbl.create 64;
      held = [||];
      total = 0;
      dropped = 0 }

let is_enabled = Option.is_some
let capacity = function None -> 0 | Some r -> r.cap

(* ------------------------------------------------------------------ *)
(* Lock picture                                                       *)

let ensure_tid r tid =
  let n = Array.length r.held in
  if tid >= n then begin
    let fresh = Array.make (max (tid + 1) (2 * n + 1)) [] in
    Array.blit r.held 0 fresh 0 n;
    r.held <- fresh
  end

let note_acquire t ~tid ~lock =
  match t with
  | None -> ()
  | Some r ->
    ensure_tid r tid;
    r.held.(tid) <- lock :: r.held.(tid)

(* Remove the innermost matching acquisition only: reentrant acquires
   of the same lock nest, and unmatched releases are ignored (the
   trace validator flags those separately). *)
let rec remove_first lock = function
  | [] -> []
  | l :: rest -> if l = lock then rest else l :: remove_first lock rest

let note_release t ~tid ~lock =
  match t with
  | None -> ()
  | Some r ->
    ensure_tid r tid;
    r.held.(tid) <- remove_first lock r.held.(tid)

let locks_held t ~tid =
  match t with
  | None -> [||]
  | Some r ->
    if tid < Array.length r.held then
      (* outermost first: the cons order is innermost first *)
      let a = Array.of_list r.held.(tid) in
      let n = Array.length a in
      Array.init n (fun i -> a.(n - 1 - i))
    else [||]

(* ------------------------------------------------------------------ *)
(* Rings                                                              *)

let dummy_entry =
  { e_index = -1; e_tid = -1; e_op = Read; e_epoch = 0; e_clock = 0;
    e_locks = [||] }

let ring_of r key =
  match Hashtbl.find_opt r.rings key with
  | Some ring -> ring
  | None ->
    let ring = { buf = Array.make r.cap dummy_entry; next = 0; len = 0 } in
    Hashtbl.replace r.rings key ring;
    ring

let record t ~key ~index ~tid ~op ~epoch ~clock =
  match t with
  | None -> ()
  | Some r ->
    let ring = ring_of r key in
    ring.buf.(ring.next) <-
      { e_index = index; e_tid = tid; e_op = op; e_epoch = epoch;
        e_clock = clock; e_locks = locks_held t ~tid };
    ring.next <- (ring.next + 1) mod r.cap;
    if ring.len < r.cap then ring.len <- ring.len + 1
    else r.dropped <- r.dropped + 1;
    r.total <- r.total + 1

let entries t ~key =
  match t with
  | None -> []
  | Some r -> (
    match Hashtbl.find_opt r.rings key with
    | None -> []
    | Some ring ->
      (* oldest first: when full, the oldest is at [next]; otherwise
         the ring starts at 0. *)
      let start = if ring.len < r.cap then 0 else ring.next in
      List.init ring.len (fun i -> ring.buf.((start + i) mod r.cap)))

let keys = function
  | None -> []
  | Some r ->
    Hashtbl.fold (fun k _ acc -> k :: acc) r.rings []
    |> List.sort Int.compare

let recorded = function None -> 0 | Some r -> r.total
let dropped = function None -> 0 | Some r -> r.dropped
let vars_tracked = function None -> 0 | Some r -> Hashtbl.length r.rings

(* entry record: header + 6 fields; the locks array: header + len *)
let entry_words e = 7 + 1 + Array.length e.e_locks

let approx_words = function
  | None -> 0
  | Some r ->
    Hashtbl.fold
      (fun _ ring acc ->
        let live = ref (1 + r.cap) (* ring record + buffer *) in
        for i = 0 to ring.len - 1 do
          live := !live + entry_words ring.buf.(i)
        done;
        acc + !live)
      r.rings 0
    + Array.length r.held

(* ------------------------------------------------------------------ *)
(* Sharding                                                           *)

let shard_view = function
  | None -> None
  | Some r ->
    Some
      { cap = r.cap;
        rings = Hashtbl.create 64;
        held = [||];
        total = 0;
        dropped = 0 }

let merge ~into src =
  match (into, src) with
  | Some into, Some src ->
    (* Variable sharding gives each key to exactly one shard, so the
       rings are disjoint; a plain move preserves every ring.  (If a
       key somehow appears on both sides, the source — the view that
       actually recorded during the region — wins.) *)
    Hashtbl.iter (fun k ring -> Hashtbl.replace into.rings k ring) src.rings;
    into.total <- into.total + src.total;
    into.dropped <- into.dropped + src.dropped
  | _ -> ()
