(** The process-wide core count: [Domain.recommended_domain_count],
    sampled once at startup.

    Every consumer of "how many cores does this host have" — the
    parallel driver's default job count ({!Domain_pool.recommended_jobs}
    delegates here), the [ftrace --jobs] oversubscription warning, and
    the host headers of the [ftrace.obs/1], [ftrace.trace/1] and
    benchmark JSON documents — must read this helper, so the figure is
    consistent across one process and has a single override point. *)

val recommended : unit -> int
(** Always ≥ 1; constant within a process. *)
