(* Space-Saving top-K (see obs_topk.mli for the guarantees).

   The entry table is a hashtable keyed by the tracked key; eviction
   finds the minimum by scanning the table.  Capacity is small (the
   profiler sizes it in the hundreds) and hits arrive as per-variable
   folds — not per event — so the scan is off any hot path. *)

type entry = { key : int; mutable count : int; mutable err : int }

type t = {
  cap : int;
  tbl : (int, entry) Hashtbl.t;
  mutable evictions : int;
  mutable dropped : int;  (* max count lost to a merge truncation *)
}

let create ?(capacity = 256) () =
  { cap = max 1 capacity;
    tbl = Hashtbl.create 64;
    evictions = 0;
    dropped = 0 }

let capacity t = t.cap
let size t = Hashtbl.length t.tbl
let evictions t = t.evictions
let dropped t = t.dropped
let is_exact t = t.evictions = 0 && t.dropped = 0

let min_entry t =
  Hashtbl.fold
    (fun _ e acc ->
      match acc with
      | Some m when m.count <= e.count -> acc
      | _ -> Some e)
    t.tbl None

let hit ?(by = 1) t key =
  if by > 0 then
    match Hashtbl.find_opt t.tbl key with
    | Some e -> e.count <- e.count + by
    | None ->
      if Hashtbl.length t.tbl < t.cap then
        Hashtbl.replace t.tbl key { key; count = by; err = 0 }
      else begin
        (* evict the minimum; the newcomer inherits its count as the
           error bound (it may have occurred up to that many times
           while untracked) *)
        match min_entry t with
        | None -> assert false
        | Some m ->
          Hashtbl.remove t.tbl m.key;
          t.evictions <- t.evictions + 1;
          Hashtbl.replace t.tbl key
            { key; count = m.count + by; err = m.count }
      end

let count t key =
  Option.map (fun e -> e.count) (Hashtbl.find_opt t.tbl key)

let compare_entries a b =
  match Int.compare b.count a.count with
  | 0 -> Int.compare a.key b.key
  | c -> c

let to_list t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.tbl []
  |> List.sort compare_entries
  |> List.map (fun e -> (e.key, e.count, e.err))

let merge ~into src =
  Hashtbl.iter
    (fun key (e : entry) ->
      match Hashtbl.find_opt into.tbl key with
      | Some d ->
        d.count <- d.count + e.count;
        d.err <- d.err + e.err
      | None ->
        Hashtbl.replace into.tbl key
          { key; count = e.count; err = e.err })
    src.tbl;
  into.evictions <- into.evictions + src.evictions;
  into.dropped <- max into.dropped src.dropped;
  let excess = Hashtbl.length into.tbl - into.cap in
  if excess > 0 then begin
    let entries =
      Hashtbl.fold (fun _ e acc -> e :: acc) into.tbl []
      |> List.sort compare_entries
    in
    let rec drop i = function
      | [] -> ()
      | e :: rest ->
        if i >= into.cap then begin
          Hashtbl.remove into.tbl e.key;
          into.dropped <- max into.dropped e.count
        end;
        drop (i + 1) rest
    in
    drop 0 entries
  end
