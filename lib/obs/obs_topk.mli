(** Mergeable Space-Saving top-K heavy-hitter sketch (Metwally et al.,
    ICDT 2005) over integer keys, used by the shadow-state profiler
    ({!Obs_prof}) to rank hot variables in bounded memory.

    The sketch keeps at most [capacity] [(key, count, err)] entries.
    A hit on a tracked key increments its count exactly.  A hit on an
    untracked key when the sketch is full evicts the current minimum
    entry and inherits its count as the new entry's error bound
    ([err]): the invariant is [true_count <= count <= true_count + err]
    for every tracked key, and any key whose true count exceeds the
    minimum tracked count is guaranteed to be present — the classic
    Space-Saving guarantee.

    {b Merging.}  [merge ~into src] unions the entries (counts and
    error bounds add for common keys) and, if the union exceeds
    [capacity], truncates back to the top [capacity] by count,
    recording the largest discarded count in [dropped] so consumers
    can report an honest rank-error bound.  Merging is associative on
    the union semantics.

    {b Exactness.}  When every input sketch saw at most [capacity]
    distinct keys (no eviction: {!evictions}[ = 0]) and the merged
    union still fits, the merge is {e exact}: counts are true counts
    and [err = 0] everywhere.  This is the normal regime for the
    parallel drivers — shards own disjoint variables, each shard's
    live-variable count is bounded, and the profiler sizes the sketch
    above it — and is what makes the merged parallel top-K equal the
    sequential oracle (asserted in [test/test_prof.ml]). *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 256. *)

val capacity : t -> int
val size : t -> int

val hit : ?by:int -> t -> int -> unit
(** Count [by] (default 1) occurrences of a key.  O(1) amortized on
    tracked keys; eviction scans the (bounded) entry table. *)

val count : t -> int -> int option
(** The tracked (over-)count for a key, if present. *)

val to_list : t -> (int * int * int) list
(** [(key, count, err)] sorted by count descending, key ascending on
    ties — a deterministic ranking. *)

val merge : into:t -> t -> unit
(** Union-sum [src] into [into], then truncate to capacity (see
    above).  [src] is not modified. *)

val evictions : t -> int
(** Evictions performed by {!hit} (summed across merges). *)

val dropped : t -> int
(** Largest count discarded by a lossy merge truncation; [0] means no
    merge ever lost an entry. *)

val is_exact : t -> bool
(** [evictions t = 0 && dropped t = 0]: every tracked count is the
    true count. *)
