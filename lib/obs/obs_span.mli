(** Span-based phase tracing.

    A sink collects [(name, start, duration, attrs)] spans, all
    timestamped with wall-clock offsets from the sink's creation, so a
    run's phases — plan / spawn / per-shard analyze / merge — line up
    on one timeline even when recorded from different domains.

    The sink is mutex-protected: the parallel driver records one span
    per shard from inside that shard's domain (one lock acquisition
    per {e shard}, never per event). *)

type attr = Int of int | Float of float | Str of string

type span = {
  name : string;
  start : float;     (** seconds since the sink's epoch *)
  duration : float;  (** wall seconds *)
  attrs : (string * attr) list;
}

type t

val create : unit -> t
(** A fresh sink; its epoch is "now". *)

val now : t -> float
(** Wall seconds since the sink's epoch. *)

val with_ : ?attrs:(string * attr) list -> t -> string -> (unit -> 'a) -> 'a
(** [with_ t name f] times [f ()] and records the span (also on
    exceptions, so a failing phase still shows in the timeline). *)

val record :
  t -> name:string -> start:float -> duration:float ->
  ?attrs:(string * attr) list -> unit -> unit
(** Record a span measured externally ([start] relative to the sink's
    epoch, see {!now}); this is what the per-shard instrumentation
    uses so the span can carry attributes computed after the fact
    (owned accesses, broadcast replays). *)

val spans : t -> span list
(** All spans so far, ordered by start time. *)

val to_json : t -> Obs_json.t
(** [[{"name":..,"start_s":..,"duration_s":..,"attrs":{..}}, ...]] *)
