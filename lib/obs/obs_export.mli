(** Assembling and writing the [--metrics FILE] JSON document.

    Schema (version [ftrace.obs/1], asserted by [test/test_obs.ml]):
    {v
    { "schema": "ftrace.obs/1",
      "host": { "cores": N, "ocaml": "...", "word_size": N },
      "metrics": { "counters": {...}, "gauges": {...},
                   "histograms": {...} },          (see Obs_metrics)
      "spans":   [ {"name","start_s","duration_s","attrs"}, ... ],
      "gc":      [ {"at_s","major_words","heap_words",...}, ... ],
      ...caller extras (run info, detector stats, shard table) }
    v}

    The document always carries the three observability sections —
    empty when the handle is {!Obs.disabled} — so downstream tooling
    never branches on presence. *)

val document : ?extra:(string * Obs_json.t) list -> Obs.t -> Obs_json.t
(** Assemble the full document; [extra] fields are appended at the
    top level (the driver adds run/stat/shard context there). *)

val to_string : ?extra:(string * Obs_json.t) list -> Obs.t -> string

val write_file :
  path:string -> ?extra:(string * Obs_json.t) list -> Obs.t -> unit
(** Write the document (plus a trailing newline) to [path];
    [path = "-"] writes to stdout, so pipelines can consume the
    export without a temp file ([ftrace analyze --metrics - | jq]). *)
