(* Monotonic wall clock (CLOCK_MONOTONIC via monotonic_stubs.c).
   Unix.gettimeofday is subject to NTP steps and manual clock changes;
   a measurement taken across a step can come out negative and poison
   benchmark records.  The monotonic clock is immune to both.

   Lives in [ft_obs] — the one library below both the parallel driver
   and the checker/bench layers — so every timing site (Par_run
   regions, Filter.run, bench_common) reads the same clock without
   [ft_checkers] or [bench] having to depend on [ft_parallel]. *)
external monotonic_seconds : unit -> float = "ft_monotonic_seconds"

let now = monotonic_seconds

let wall_time f =
  let start = monotonic_seconds () in
  let x = f () in
  (x, monotonic_seconds () -. start)
