(** Shadow-state profiler: per-variable cost attribution, shadow
    census, and the [ftrace.prof/1] export.

    FastTrack's empirical claim is distributional — almost every
    access takes an O(1) epoch path, and read vector clocks rarely
    stay inflated — but the run-level counters ([Stats.epoch_ops] /
    [vc_ops]) only prove it in aggregate.  This module attributes the
    cost to {e variables}: the detector attaches a {!cell} to each
    shadow state and bumps per-rule counters through it, tags
    inflation/deflation transitions of the read history, and lets the
    driver take a final (or periodic) {e census} of the shadow state
    classifying each variable as epoch-only vs inflated and summing
    its approximate memory footprint.  A mergeable Space-Saving
    sketch ({!Obs_topk}) ranks the hot variables in bounded memory so
    the ranking survives the planned streaming front-end, where
    per-variable exact cells will not fit.

    {b Cost model} (measured by [bench profile], gated at <= 10% on
    moldyn): disabled, the handle is an immediate [None] — detectors
    cache one [prof_on : bool] and pay a single predictable branch
    per access.  Enabled, an access costs one array increment, one
    class-total increment and two stores ({!hit}), plus a countdown
    decrement for the timing sampler ({!sample_due}); the clock is
    only read once per [sample_stride] accesses.  Census, top-K folds
    and exports run off the hot path entirely.

    Like the other [lib/obs] facilities, this module sits below the
    detector library: it deals in integer keys and display names, not
    [Var.t] or [Stats.t].

    {b Sharding}: same discipline as [Obs_recorder] — each shard or
    work item profiles into a private {!shard_view} (fresh cells,
    fresh sketch), and the driver {!merge}s the views on the main
    domain after the parallel region.  Variable sharding makes the
    per-key cells disjoint, so the merge is a move and the merged
    profile (including the top-K, see {!Obs_topk}) equals the
    sequential run's exactly. *)

type t
type cell

(** Figure 5's cost classes: [Same_epoch] is the same-epoch fast
    path; [Epoch] covers the remaining O(1) rules (epoch compares and
    the READ SHARED slot update); [Vc] is the two O(n) vector-clock
    walks (READ SHARE, WRITE SHARED). *)
type rule_class = Same_epoch | Epoch | Vc

val class_to_string : rule_class -> string

val disabled : t
val is_enabled : t -> bool

val create :
  ?topk_capacity:int ->
  ?sample_stride:int ->
  ?series_capacity:int ->
  unit ->
  t
(** An enabled profiler.  [topk_capacity] (default 256) bounds the
    heavy-hitter sketch; [sample_stride] (default 512) is the access
    period of the timing sampler; [series_capacity] (default 512)
    bounds the Perfetto counter-track series (it thins by 2x and
    doubles its stride when full). *)

(** {2 Detector-side hooks} *)

val register_rules : t -> (string * rule_class) array -> unit
(** Declare the detector's rule set once, at instance creation.
    {!hit} indices refer to positions in this array. *)

val no_cell : cell
(** Placeholder for shadow states created while profiling is
    disabled; never counted. *)

val cell : t -> key:int -> name:string -> cell
(** The attribution cell for a shadow key, created on first use (cold
    path: once per variable).  [name] is the display name warnings
    use (e.g. ["x3.1"]). *)

val hit : t -> cell -> int -> unit
(** Attribute one access resolved by rule [i] to [cell].  The hot
    hook: callers must guard with a cached [is_enabled] bool so the
    disabled cost stays one branch.  Resolves the rule's cost class
    through the registered rule array; rule sites that know their
    class statically should call the specialized variant instead. *)

val hit_same : t -> cell -> int -> unit
val hit_epoch : t -> cell -> int -> unit

val hit_vc : t -> cell -> int -> unit
(** {!hit} specialized to a statically-known cost class, skipping the
    class lookup.  [i] must be a registered rule index below
    the registered rule count (and the 16-slot cell floor) — the
    arrays are accessed unchecked. *)

val cell_rules : cell -> int array
(** The cell's raw per-rule counter array, for detectors that inline
    the increment itself (cache the array next to the shadow state,
    bump [a.(i)] directly).  A detector on this protocol must also
    call {!note_totals} whenever the profiler is about to read global
    state — before each {!sample} and at the start of its census
    walker — and {!attribute} on the access being timed; the [hit]
    family must not be mixed in (the totals would double-count).
    This is the protocol the overhead gate in [bench profile] prices:
    the per-access cost is one array increment plus one cached-bool
    test. *)

val attribute : t -> cell -> vc:bool -> unit
(** Record the cell and cost class ([vc] = an O(n) rule fired) of the
    access being timed, for {!sample} to attribute.  Called from the
    rule site, only on the one access per stride the detector is
    sampling. *)

val note_totals : t -> same:int -> epoch:int -> vc:int -> unit
(** Reconcile the class totals from the detector's own counters
    (absolute values, not deltas).  Cold: sample and census
    boundaries only. *)

val inflate : t -> cell -> unit
(** The variable's read history just inflated to a vector clock
    (READ SHARE). *)

val deflate : t -> cell -> unit
(** The read history just demoted back to an epoch (WRITE SHARED
    under read demotion). *)

val sync_vc_op : t -> unit
(** A synchronization-driven vector-clock operation ([Vc_state]);
    attributed to the sync machinery rather than any variable.  Under
    the stealing plan sync is replayed by the shared timeline before
    the region, so this counts 0 there — the export documents the
    asymmetry. *)

(** {2 Sampled timing} *)

val sample_due : t -> bool
(** Decrement the sample countdown; [true] once every
    [sample_stride] calls (always [false] disabled).  The caller
    brackets the access with [Obs_clock.now] and reports {!sample}. *)

val sample_stride : t -> int
(** The configured sample period (0 disabled).  Detectors that keep
    the countdown in their own record — one register decrement per
    access instead of a cross-module {!sample_due} call — read it
    once at creation and call {!begin_sample} when their countdown
    expires. *)

val begin_sample : t -> unit
(** A timing sample is starting: the next {!hit} records its cell and
    cost class for {!sample} to attribute. *)

val sample : t -> ns:float -> unit
(** Record a sampled access duration, attributed to the cell and cost
    class of the last {!hit}, into log2-ns buckets; also advances the
    counter-track series. *)

(** {2 Census} *)

val set_census : t -> (unit -> unit) -> unit
(** Register the detector's shadow-state walker.  The walker calls
    {!census_var} once per initialized shadow state. *)

val census_var :
  t -> cell -> inflated:bool -> words:int -> rvc_words:int -> unit
(** Classify one variable: [inflated] iff its read history is
    currently a vector clock; [words] is its whole shadow-state
    footprint including [rvc_words] (the read VC's share, 0 when
    epoch-only). *)

val take_census : t -> unit
(** Run the registered walker (resetting previous census counts) and
    fold the cells into the top-K sketch.  Drivers call this at end
    of run / shard / item, on the domain that owns the cells. *)

(** {2 Sharding} *)

val shard_view : t -> t
(** A private view sharing the parent's configuration and clock epoch
    (so series timestamps align) but owning fresh cells and a fresh
    sketch.  Disabled parent => disabled view. *)

val merge : into:t -> t -> unit
(** Fold a view back into the parent (cells move — disjoint keys
    under variable sharding; totals, buckets, census and sketch
    add).  Main-domain, post-region only. *)

(** {2 Consumers} *)

val accesses : t -> int
(** Attributed accesses so far ([Same_epoch + Epoch + Vc] totals). *)

val vc_walks : t -> int
(** Accesses resolved by an O(n) rule ([Vc] class: READ SHARE /
    WRITE SHARED) — the complement of {!fast_frac}'s numerator. *)

val inflated_now : t -> int
(** Variables whose read history was a vector clock at the last
    {!take_census} (0 before any census). *)

val fast_frac : t -> float
(** Fraction of attributed accesses resolved by an O(1) rule
    ([Same_epoch] or [Epoch]); [0.] before any access (never NaN). *)

val same_epoch_frac : t -> float
(** Fraction resolved by the same-epoch fast path alone. *)

val hot_alist : ?k:int -> t -> (string * int) list
(** Top [k] (default 5) variables by attributed ops, for the
    [ftrace.live/1] [top_vars] field.  Scans the cell table — publish
    granularity only, not per event. *)

val series : t -> (float * int * int) list
(** The merged counter-track series: [(seconds, cumulative O(1) ops,
    cumulative VC-walk ops)], chronological, summed across shard
    views.  Feeds the Perfetto counter tracks in {!Obs_traceevent}. *)

val schema_version : string
(** ["ftrace.prof/1"]. *)

val document :
  ?source:string ->
  ?tool:string ->
  ?wall:float ->
  ?stats:(string * int) list ->
  ?top:int ->
  t ->
  Obs_json.t
(** The [ftrace.prof/1] document: totals, per-rule attribution with
    cost classes, census, the joined top-[top] (default 20) variable
    table, sketch metadata, timing buckets and the run's [stats]
    counters when provided.  A disabled handle yields a valid
    document with zeroed totals. *)

val write_file :
  path:string ->
  ?source:string ->
  ?tool:string ->
  ?wall:float ->
  ?stats:(string * int) list ->
  ?top:int ->
  t ->
  unit
(** Write {!document} to [path]; ["-"] writes to stdout. *)

val render : ?top:int -> ?source:string -> ?tool:string -> t -> string list
(** The human panel (for [ftrace profile] and [--verbose-stats]): one
    string per line, no trailing newline. *)
