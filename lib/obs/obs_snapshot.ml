(* Immutable point-in-time view of a running analysis.

   The live telemetry bus (Obs_live) is built from these: each worker
   periodically publishes a partial snapshot of its own progress
   (reading only its *own* mutable counters, on its own domain — no
   cross-domain reads of unsynchronized state), and a collector merges
   the latest partials into one run-wide snapshot whose delta against
   the previously emitted one becomes an ftrace.live/1 record.

   ft_obs sits below ft_detector, so this module cannot see Stats.t;
   the driver flattens its counters into [counts] (a plain record of
   ints) at publish time.  Keeping the type dumb also keeps merging
   associative and the delta encoding trivially correct:
   [sub (add a b) a = b] field-wise. *)

type counts = {
  events : int;
      (* events the detector(s) processed so far (excludes eliminated) *)
  reads : int;
  writes : int;
  syncs : int;
  eliminated : int;
  epoch_ops : int;  (* O(1) epoch fast-path operations *)
  vc_ops : int;     (* O(n) vector-clock slow-path operations *)
  state_words : int;
  warnings : int;
}

let zero =
  { events = 0;
    reads = 0;
    writes = 0;
    syncs = 0;
    eliminated = 0;
    epoch_ops = 0;
    vc_ops = 0;
    state_words = 0;
    warnings = 0 }

let add a b =
  { events = a.events + b.events;
    reads = a.reads + b.reads;
    writes = a.writes + b.writes;
    syncs = a.syncs + b.syncs;
    eliminated = a.eliminated + b.eliminated;
    epoch_ops = a.epoch_ops + b.epoch_ops;
    vc_ops = a.vc_ops + b.vc_ops;
    state_words = a.state_words + b.state_words;
    warnings = a.warnings + b.warnings }

let sub a b =
  { events = a.events - b.events;
    reads = a.reads - b.reads;
    writes = a.writes - b.writes;
    syncs = a.syncs - b.syncs;
    eliminated = a.eliminated - b.eliminated;
    epoch_ops = a.epoch_ops - b.epoch_ops;
    vc_ops = a.vc_ops - b.vc_ops;
    state_words = a.state_words - b.state_words;
    warnings = a.warnings - b.warnings }

type worker = { w_id : int; w_events : int }

type t = {
  at : float;  (* seconds since the bus started *)
  phase : string;
  counts : counts;
  rules : (string * int) list;  (* cumulative rule hits; [] mid-run *)
  vars : (string * int) list;   (* hot-variable standings; [] unless profiling *)
  workers : worker array;
  heap_words : int;  (* GC quick-stat at snapshot time; 0 if unsampled *)
}

let empty =
  { at = 0.; phase = ""; counts = zero; rules = []; vars = [];
    workers = [||]; heap_words = 0 }

(* Merge rule alists by name (each worker's cumulative hits add). *)
let merge_rules alists =
  let tbl = Hashtbl.create 16 in
  List.iter
    (List.iter (fun (name, n) ->
         match Hashtbl.find_opt tbl name with
         | Some r -> r := !r + n
         | None -> Hashtbl.replace tbl name (ref n)))
    alists;
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

(* Merge worker partials into one run-wide snapshot.  Counter fields
   add; [at] and [phase] are the merger's (the collector knows the
   clock and the phase, the workers don't). *)
let merge ~at ~phase parts =
  { at;
    phase;
    counts = List.fold_left (fun acc p -> add acc p.counts) zero parts;
    rules = merge_rules (List.map (fun p -> p.rules) parts);
    vars = merge_rules (List.map (fun p -> p.vars) parts);
    workers =
      Array.concat (List.map (fun p -> p.workers) parts)
      |> (fun ws ->
           Array.sort (fun a b -> Int.compare a.w_id b.w_id) ws;
           ws);
    heap_words =
      List.fold_left (fun acc p -> max acc p.heap_words) 0 parts }

(* Events accounted for against the trace length: processed +
   eliminated (skipped accesses never reach the detector but are
   progress all the same). *)
let events_seen t = t.counts.events + t.counts.eliminated

let progress ~total t =
  if total <= 0 then 0.
  else Float.min 1. (float_of_int (events_seen t) /. float_of_int total)

let eta ~total t =
  let seen = events_seen t in
  if seen <= 0 || t.at <= 0. || total <= seen then 0.
  else t.at *. float_of_int (total - seen) /. float_of_int seen

let fast_path_frac t =
  let fast = t.counts.epoch_ops and slow = t.counts.vc_ops in
  let ops = fast + slow in
  if ops <= 0 then 0. else float_of_int fast /. float_of_int ops

(* Max-over-mean of per-worker progress: the same statistic as
   Shard.imbalance_of_counts (not shared — ft_parallel sits above
   ft_obs). *)
let imbalance t =
  let ws = t.workers in
  let n = Array.length ws in
  if n = 0 then 1.0
  else begin
    let total = Array.fold_left (fun a w -> a + w.w_events) 0 ws in
    if total <= 0 then 1.0
    else begin
      let mx = Array.fold_left (fun a w -> max a w.w_events) 0 ws in
      float_of_int mx *. float_of_int n /. float_of_int total
    end
  end

let rate ~prev t =
  let dt = t.at -. prev.at in
  if dt <= 0. then 0.
  else float_of_int (events_seen t - events_seen prev) /. dt
