type attr = Int of int | Float of float | Str of string

type span = {
  name : string;
  start : float;
  duration : float;
  attrs : (string * attr) list;
}

type t = {
  epoch : float;
  mutable recorded : span list;  (* reverse chronological-ish *)
  mu : Mutex.t;
}

let create () =
  { epoch = Unix.gettimeofday (); recorded = []; mu = Mutex.create () }

let now t = Unix.gettimeofday () -. t.epoch

let push t s =
  Mutex.lock t.mu;
  t.recorded <- s :: t.recorded;
  Mutex.unlock t.mu

let record t ~name ~start ~duration ?(attrs = []) () =
  push t { name; start; duration; attrs }

let with_ ?(attrs = []) t name f =
  let start = now t in
  let finish () = record t ~name ~start ~duration:(now t -. start) ~attrs () in
  match f () with
  | x ->
    finish ();
    x
  | exception e ->
    finish ();
    raise e

let spans t =
  Mutex.lock t.mu;
  let ss = t.recorded in
  Mutex.unlock t.mu;
  List.stable_sort (fun a b -> Float.compare a.start b.start) (List.rev ss)

let attr_to_json = function
  | Int n -> Obs_json.int n
  | Float f -> Obs_json.float f
  | Str s -> Obs_json.str s

let to_json t =
  Obs_json.arr
    (List.map
       (fun s ->
         Obs_json.obj
           [ ("name", Obs_json.str s.name);
             ("start_s", Obs_json.float s.start);
             ("duration_s", Obs_json.float s.duration);
             ("attrs",
              Obs_json.obj
                (List.map (fun (k, v) -> (k, attr_to_json v)) s.attrs)) ])
       (spans t))
