(** Per-variable flight recorder: a fixed-size ring buffer of the most
    recent accesses to each shadow location, plus a running picture of
    which locks each thread holds.

    The recorder is the provenance half of the observability layer
    (ISSUE 3): when a race fires, the last [capacity] accesses to the
    racy location — who touched it, at which trace index, under which
    epoch, holding which locks — are still in the ring, so the report
    can show the {e history} that led to the race instead of only its
    final two accesses.  SmartTrack (Roemer et al., PLDI 2020) showed
    this kind of per-operation provenance accounting is affordable
    when kept O(1) per event; this module follows that discipline:

    - {b O(1) record}: one ring-slot store per access (amortized; the
      first access to a location allocates its ring), one list cons /
      head-drop per lock operation;
    - {b zero cost when disabled}: the {!disabled} handle is a shared
      immediate; every operation on it is a single branch and no
      allocation, mirroring {!Obs.disabled} — the default analysis
      path is byte-identical with the recorder off (asserted in
      [test/test_report.ml]);
    - {b bounded memory}: at most [capacity] entries per distinct
      shadow key, so the footprint is [O(capacity x live locations)]
      regardless of trace length (see DESIGN.md §"Recorder memory
      bounds").

    Like the metrics registry, recorders are {e not} synchronized: the
    parallel driver gives each shard a private {!shard_view} and
    {!merge}s them after the region.  Variable sharding makes the
    merge trivial — a shard only ever records accesses to keys it
    owns, so the per-key rings of different shards are disjoint — and
    each shard replays the full broadcast sync stream, so every view's
    lock picture is the complete one.

    The module lives in [ft_obs] and is deliberately type-agnostic:
    keys, thread ids, lock ids and epochs are plain [int]s (the
    detector passes [Shadow.key], [Tid.t], [Lockid.t] and
    [Epoch.to_int] respectively), keeping [ft_obs] free of any
    dependency on the trace or vclock libraries. *)

type op = Read | Write

type entry = {
  e_index : int;  (** trace position of the access *)
  e_tid : int;
  e_op : op;
  e_epoch : int;  (** packed epoch ([Epoch.to_int]) of the accessor *)
  e_clock : int;  (** the accessor's clock component, for display *)
  e_locks : int array;
      (** lock ids held by [e_tid] at the access, outermost first *)
}

type t

val disabled : t
(** The inert handle; all operations are no-ops, {!entries} is empty. *)

val default_capacity : int
(** 8 entries per location. *)

val create : ?capacity:int -> unit -> t
(** A fresh enabled recorder keeping the last [capacity] (default
    {!default_capacity}, min 1) accesses per shadow key. *)

val is_enabled : t -> bool
val capacity : t -> int
(** [0] when disabled. *)

(** {2 Hot path} *)

val note_acquire : t -> tid:int -> lock:int -> unit
val note_release : t -> tid:int -> lock:int -> unit
(** Maintain the per-thread held-lock picture.  Release removes the
    innermost matching acquisition (reentrant acquires nest). *)

val record :
  t -> key:int -> index:int -> tid:int -> op:op -> epoch:int ->
  clock:int -> unit
(** Push one access into [key]'s ring, capturing the locks [tid]
    currently holds; overwrites the oldest entry when full. *)

(** {2 Introspection (cold)} *)

val locks_held : t -> tid:int -> int array
(** Snapshot of the locks [tid] holds right now, outermost first;
    [[||]] when disabled. *)

val entries : t -> key:int -> entry list
(** The ring for [key], oldest first; [[]] when disabled or never
    recorded. *)

val keys : t -> int list
(** Keys with at least one recorded access, ascending. *)

val recorded : t -> int
(** Total accesses recorded (including since-overwritten ones). *)

val dropped : t -> int
(** Entries lost to ring wraparound ([recorded - still buffered]). *)

val vars_tracked : t -> int
(** Distinct keys with a live ring. *)

val approx_words : t -> int
(** Approximate heap footprint in words: rings, entries and the lock
    arrays they captured.  The documented bound is
    [vars_tracked x capacity x (entry header + fields)] plus the held
    locks; see DESIGN.md. *)

(** {2 Sharding} *)

val shard_view : t -> t
(** A private recorder for one shard of a parallel region: same
    capacity, fresh rings, fresh lock picture (the shard replays the
    full broadcast sync stream, so its picture is complete).
    {!disabled} maps to itself. *)

val merge : into:t -> t -> unit
(** Fold a shard view's rings and totals back into the parent.
    Per-key rings are disjoint under variable sharding, so this is a
    move, not an interleave.  No-op if either side is disabled. *)
