type counter = { mutable c : int }
type gauge = { mutable g : float; mutable touched : bool }

(* 65 power-of-two buckets covering 2^-32 .. 2^32; index i holds
   samples with binary exponent i - 32 (value in [2^(e-1), 2^e)). *)
let bucket_count = 65
let exp_offset = 32

type histogram = {
  buckets : int array;
  mutable count : int;
  mutable sum : float;
  mutable max_sample : float;
}

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16 }

let find_or_add tbl name make =
  match Hashtbl.find_opt tbl name with
  | Some v -> v
  | None ->
    let v = make () in
    Hashtbl.replace tbl name v;
    v

let counter t name = find_or_add t.counters name (fun () -> { c = 0 })

let gauge t name =
  find_or_add t.gauges name (fun () -> { g = 0.; touched = false })

let histogram t name =
  find_or_add t.histograms name (fun () ->
      { buckets = Array.make bucket_count 0;
        count = 0;
        sum = 0.;
        max_sample = neg_infinity })

let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let counter_value c = c.c

let set g v =
  g.g <- v;
  g.touched <- true

let gauge_value g = g.g

let bucket_of v =
  if not (Float.is_finite v) || v <= 0. then 0
  else
    let _, e = Float.frexp v in
    if e < -exp_offset then 0
    else if e > bucket_count - 1 - exp_offset then bucket_count - 1
    else e + exp_offset

let observe h v =
  let i = bucket_of v in
  h.buckets.(i) <- h.buckets.(i) + 1;
  h.count <- h.count + 1;
  (* non-finite samples clamp in the bucket map above; keep them out
     of the running sum/max so one NaN or infinity can't poison the
     aggregates for the whole run *)
  if Float.is_finite v then begin
    h.sum <- h.sum +. v;
    if v > h.max_sample then h.max_sample <- v
  end

(* ------------------------------------------------------------------ *)

type histogram_snapshot = {
  count : int;
  sum : float;
  max_sample : float;
  buckets : (int * int) list;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_snapshot) list;
}

let sorted_alist tbl value =
  Hashtbl.fold (fun name v acc -> (name, value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let histogram_snapshot (h : histogram) =
  let buckets = ref [] in
  for i = bucket_count - 1 downto 0 do
    if h.buckets.(i) > 0 then
      buckets := (i - exp_offset, h.buckets.(i)) :: !buckets
  done;
  { count = h.count;
    sum = h.sum;
    max_sample = (if h.count = 0 then 0. else h.max_sample);
    buckets = !buckets }

let snapshot (t : t) =
  { counters = sorted_alist t.counters counter_value;
    gauges = sorted_alist t.gauges gauge_value;
    histograms = sorted_alist t.histograms histogram_snapshot }

let merge_into ~into (src : t) =
  Hashtbl.iter (fun name c -> add (counter into name) c.c) src.counters;
  Hashtbl.iter
    (fun name g -> if g.touched then set (gauge into name) g.g)
    src.gauges;
  Hashtbl.iter
    (fun name (h : histogram) ->
      let dst = histogram into name in
      Array.iteri
        (fun i n -> dst.buckets.(i) <- dst.buckets.(i) + n)
        h.buckets;
      dst.count <- dst.count + h.count;
      dst.sum <- dst.sum +. h.sum;
      if h.max_sample > dst.max_sample then dst.max_sample <- h.max_sample)
    src.histograms

let snapshot_to_json (s : snapshot) =
  Obs_json.obj
    [ ("counters",
       Obs_json.obj
         (List.map (fun (n, v) -> (n, Obs_json.int v)) s.counters));
      ("gauges",
       Obs_json.obj
         (List.map (fun (n, v) -> (n, Obs_json.float v)) s.gauges));
      ("histograms",
       Obs_json.obj
         (List.map
            (fun (n, (h : histogram_snapshot)) ->
              ( n,
                Obs_json.obj
                  [ ("count", Obs_json.int h.count);
                    ("sum", Obs_json.float h.sum);
                    ("max", Obs_json.float h.max_sample);
                    ("buckets",
                     Obs_json.arr
                       (List.map
                          (fun (e, k) ->
                            Obs_json.obj
                              [ ("le_exp", Obs_json.int e);
                                ("n", Obs_json.int k) ])
                          h.buckets)) ] ))
            s.histograms)) ]
