type enabled = {
  metrics : Obs_metrics.t;
  spans : Obs_span.t;
  gc : Obs_gc.t;
}

type t = enabled option

let disabled = None

let create ?gc_every () =
  Some
    { metrics = Obs_metrics.create ();
      spans = Obs_span.create ();
      gc = Obs_gc.create ?every:gc_every () }

let is_enabled = Option.is_some
let metrics t = Option.map (fun e -> e.metrics) t
let spans t = Option.map (fun e -> e.spans) t
let gc t = Option.map (fun e -> e.gc) t

let span ?attrs t name f =
  match t with
  | None -> f ()
  | Some e -> Obs_span.with_ ?attrs e.spans name f

let record_span t ~name ~start ~duration ?attrs () =
  match t with
  | None -> ()
  | Some e -> Obs_span.record e.spans ~name ~start ~duration ?attrs ()

let now = function None -> 0. | Some e -> Obs_span.now e.spans
let tick = function None -> () | Some e -> Obs_gc.tick e.gc
let gc_sample = function None -> () | Some e -> Obs_gc.sample_now e.gc

let gc_sample_full = function
  | None -> ()
  | Some e -> Obs_gc.sample_full e.gc

let counter t name =
  match t with None -> None | Some e -> Some (Obs_metrics.counter e.metrics name)

let bump t name n =
  match t with
  | None -> ()
  | Some e -> Obs_metrics.add (Obs_metrics.counter e.metrics name) n

let set_gauge t name v =
  match t with
  | None -> ()
  | Some e -> Obs_metrics.set (Obs_metrics.gauge e.metrics name) v

let observe t name v =
  match t with
  | None -> ()
  | Some e -> Obs_metrics.observe (Obs_metrics.histogram e.metrics name) v

let shard_view = function
  | None -> None
  | Some e -> Some { e with metrics = Obs_metrics.create () }

let merge ~into src =
  match (into, src) with
  | Some into, Some src ->
    Obs_metrics.merge_into ~into:into.metrics src.metrics
  | _ -> ()
