(* One core-count authority for the whole tree.

   Before this module, the CLI's --jobs oversubscription warning
   (through Domain_pool.recommended_jobs) and the exporters' host
   headers (Obs_export / Obs_traceevent / Bench_json) each called
   Domain.recommended_domain_count on their own; a future override
   knob (containers lie about cores; CI wants to pin the figure)
   would have had to chase every site.  Everyone now reads the one
   value sampled at program start — the figure cannot drift within a
   process, and the sample avoids re-querying the runtime from
   multiple domains. *)

let sampled = Domain.recommended_domain_count ()

let recommended () = sampled
