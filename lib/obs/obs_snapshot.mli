(** Immutable point-in-time view of a running analysis — the unit the
    live telemetry bus ({!Obs_live}) publishes, merges and
    delta-encodes into [ftrace.live/1] records.

    [ft_obs] sits below the detector library, so the counter set is a
    plain record ({!counts}) the driver fills from its [Stats.t]; the
    arithmetic is exact and associative ([sub (add a b) a = b]
    field-wise), which is what makes the delta encoding loss-free:
    summing a stream's deltas reproduces the cumulative counters. *)

type counts = {
  events : int;
      (** events the detector(s) processed so far (excludes
          eliminated accesses, which never reach a detector) *)
  reads : int;
  writes : int;
  syncs : int;
  eliminated : int;  (** accesses skipped by static elimination *)
  epoch_ops : int;   (** O(1) epoch fast-path operations *)
  vc_ops : int;      (** O(n) vector-clock slow-path operations *)
  state_words : int; (** shadow-state words currently allocated *)
  warnings : int;
}

val zero : counts
val add : counts -> counts -> counts
val sub : counts -> counts -> counts

type worker = {
  w_id : int;
  w_events : int;  (** events this worker has processed so far *)
}

type t = {
  at : float;   (** seconds since the bus started *)
  phase : string;
      (** driver phase: ["prefix"], ["analyze"], ["merge"], ["done"] *)
  counts : counts;
  rules : (string * int) list;
      (** cumulative per-rule hits, descending; [[]] when the
          publisher skipped them (mid-item partials) *)
  vars : (string * int) list;
      (** hot-variable standings from the shadow-state profiler
          ([Obs_prof.hot_alist]), descending; [[]] unless profiling *)
  workers : worker array;  (** ascending by [w_id] *)
  heap_words : int;  (** GC heap words at snapshot time; 0 unsampled *)
}

val empty : t

val merge_rules : (string * int) list list -> (string * int) list
(** Merge rule alists by name (hits add), sorted descending by count. *)

val merge : at:float -> phase:string -> t list -> t
(** Merge worker partials into one run-wide snapshot: counter fields
    and rule hits add, worker arrays concatenate (sorted by id),
    [heap_words] takes the max; [at]/[phase] come from the caller (the
    collector owns the clock and the phase, workers don't). *)

(** {2 Derived figures} *)

val events_seen : t -> int
(** [counts.events + counts.eliminated] — progress against the trace
    length (skipped accesses are progress too). *)

val progress : total:int -> t -> float
(** Fraction of the trace accounted for, clamped to [0..1] ([total]
    is the trace length; static-plan broadcast replays can overshoot
    and are clamped). *)

val eta : total:int -> t -> float
(** Estimated seconds to completion from the mean rate so far; [0.]
    when unknown or complete. *)

val fast_path_frac : t -> float
(** [epoch_ops / (epoch_ops + vc_ops)] — the paper's epoch-fast-path
    share; [0.] before any operation. *)

val imbalance : t -> float
(** Max-over-mean of per-worker event counts (same statistic as
    [Shard.imbalance_of_counts]); [1.0] when unknown or balanced. *)

val rate : prev:t -> t -> float
(** Events per second between two snapshots ([events_seen] delta over
    [at] delta); [0.] for a non-positive interval. *)
