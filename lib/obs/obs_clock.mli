(** The process-wide monotonic wall clock.

    Re-homed here from [lib/parallel] so that the prefilter harness
    ({!Filter.run}) and the bench timing loops can share it with the
    parallel driver without depending on [ft_parallel]:
    [ft_obs] sits below all of them in the library graph. *)

val now : unit -> float
(** Seconds on the system {e monotonic} clock ([CLOCK_MONOTONIC]).
    The absolute value is meaningless; differences are elapsed wall
    time immune to NTP steps and manual clock changes, so timing
    records built from it can never come out negative. *)

val wall_time : (unit -> 'a) -> 'a * float
(** [wall_time f] runs [f ()] and reports elapsed wall-clock seconds
    on {!now}, alongside [f]'s result. *)
