(** Live telemetry bus: streams in-flight {!Obs_snapshot} merges as
    delta-encoded NDJSON in the versioned [ftrace.live/1] schema.

    Roles:
    - the {e driver} creates the bus ({!create}) and one {!pub} per
      worker ({!publisher});
    - each {e worker} publishes every [tick_events] events — via a
      {!pub_ticker} closure wrapped around sharded hot loops, or via
      {!pub_chunk} when the driver can re-chunk the iteration itself
      (the sequential loop; zero per-event cost): it flattens its own
      counters into an immutable partial and publishes it with one
      atomic store (it never touches the sink or another worker's
      state), and folds completed detector instances in with
      {!pub_fold};
    - the {e collector} merges the latest partials and appends one
      record per elapsed period — the calling thread itself for
      sequential runs ([~standalone:true] tickers), a dedicated domain
      for parallel regions ({!with_collector}).

    Stream layout: a header line ([schema]/[source]/[tool]/
    [total_events]/[period_s]/[tick_events]/[host]), then records with
    monotone [seq] and [cum_events], per-record counter deltas under
    ["d"], and gauges ([evps], [fast_frac], [imbalance], [heap_words],
    [workers]); finally one [{"final":true}] record whose ["cum"]
    object carries the run's exact cumulative counters — the same
    fields the [ftrace.obs/1] [--metrics] export writes, so the stream
    can be cross-checked against it to the last integer.

    The disabled handle costs one branch at closure-selection time and
    nothing per event (the ticker is [None], so drivers keep their
    uninstrumented loop). *)

type t
type pub

val disabled : t
val pub_disabled : pub
val is_enabled : t -> bool

val open_sink : string -> (out_channel * bool, string) result
(** Parse a [--live] sink spec: ["-"] is stdout (not owned),
    ["fd:N"] wraps an inherited descriptor, anything else is a file
    path (truncated).  Returns the channel and whether the caller owns
    (must close) it. *)

val create :
  ?period:float ->
  ?tick_events:int ->
  ?total:int ->
  ?source:string ->
  ?tool:string ->
  sink:out_channel ->
  owns_sink:bool ->
  unit ->
  t
(** Open the bus and write the header line.  [period] (default 0.05s)
    gates record emission; [tick_events] (default 8192) is the
    per-worker publish granularity; [total] is the trace length used
    by consumers for progress/ETA (0 when unknown). *)

val publisher : t -> worker:int -> pub
(** A per-worker publisher handle.  Call once per worker, before its
    hot loop; on a disabled bus this is free and yields a disabled
    [pub]. *)

val pub_ticker :
  ?standalone:bool ->
  ?rules:(unit -> (string * int) list) ->
  ?vars:(unit -> (string * int) list) ->
  pub ->
  current:(unit -> Obs_snapshot.counts) ->
  (unit -> unit) option
(** The hot-loop closure, or [None] when disabled (so the driver keeps
    its uninstrumented loop — the one-branch idiom).  [current] reads
    the worker's {e own} live counters (same-domain, so the read is
    safe); it is re-created per detector instance because the counters
    move.  [rules] likewise reads the instance's own rule tally,
    invoked only at publish granularity (every [tick_events]), not per
    event; [vars] is its twin for the profiler's hot-variable
    standings ([Obs_prof.hot_alist]), surfaced as the records'
    [top_vars] field.  [standalone] makes the ticker also drive
    collection (for sequential runs with no collector domain). *)

val pub_chunk :
  ?standalone:bool ->
  ?rules:(unit -> (string * int) list) ->
  ?vars:(unit -> (string * int) list) ->
  pub ->
  current:(unit -> Obs_snapshot.counts) ->
  (int * (unit -> unit)) option
(** Zero-per-event alternative to {!pub_ticker} for drivers that
    control their own iteration: returns [(tick_events, publish)].
    The driver walks the trace in chunks of [tick_events] events and
    calls [publish] between chunks, so the hot loop runs the exact
    uninstrumented event handler — the enabled-mode cost moves
    entirely off the per-event path.  Only applicable when the loop
    can be re-chunked (the sequential driver's contiguous
    [Trace.iter_range]); sharded loops iterate index subsequences and
    keep {!pub_ticker}. *)

val pub_fold :
  ?vars:(string * int) list ->
  pub ->
  counts:Obs_snapshot.counts ->
  rules:(string * int) list ->
  unit
(** Fold a {e completed} detector instance into the worker's
    accumulated counts (and rule and hot-variable standings), and
    republish.  Rules are only read here — at completion, on the
    owning domain — never mid-item. *)

val set_phase : t -> string -> unit
(** Change the driver phase; emits a record immediately on change. *)

val set_base : t -> Obs_snapshot.counts -> unit
(** Counters not owned by any worker (the stealing prefix's timeline
    replay and routed-out eliminated accesses); added to every merge. *)

val with_collector : t -> (unit -> 'a) -> 'a
(** Run [f] with a dedicated collector domain merging and emitting at
    the bus period; joins it before returning.  On a disabled bus just
    runs [f]. *)

val finish :
  ?top_vars:(string * int) list ->
  t ->
  wall:float ->
  fields:(string * int) list ->
  rules:(string * int) list ->
  warnings:int ->
  unit
(** Emit the final record from the run's merged result counters
    ([Stats.fields_alist]-shaped), guaranteeing the stream's cumulative
    totals equal the [--metrics] export exactly.  Idempotent; the bus
    stops emitting afterwards. *)

val close : t -> unit
(** Flush, and close the sink if owned.  The CLI owns the lifecycle;
    the driver never closes. *)
