let schema_version = "ftrace.obs/1"

let document ?(extra = []) t =
  let metrics =
    match Obs.metrics t with
    | Some m -> Obs_metrics.snapshot_to_json (Obs_metrics.snapshot m)
    | None ->
      Obs_metrics.snapshot_to_json
        { Obs_metrics.counters = []; gauges = []; histograms = [] }
  in
  let spans =
    match Obs.spans t with
    | Some s -> Obs_span.to_json s
    | None -> Obs_json.arr []
  in
  let gc =
    match Obs.gc t with
    | Some g -> Obs_gc.to_json g
    | None -> Obs_json.arr []
  in
  Obs_json.obj
    ([ ("schema", Obs_json.str schema_version);
       ("host",
        Obs_json.obj
          [ ("cores", Obs_json.int (Obs_cores.recommended ()));
            ("ocaml", Obs_json.str Sys.ocaml_version);
            ("word_size", Obs_json.int Sys.word_size) ]);
       ("enabled", Obs_json.bool (Obs.is_enabled t));
       ("metrics", metrics);
       ("spans", spans);
       ("gc", gc) ]
    @ extra)

let to_string ?extra t = Obs_json.to_string (document ?extra t)

let write_file ~path ?extra t =
  if path = "-" then begin
    Obs_json.to_channel stdout (document ?extra t);
    print_newline ()
  end
  else begin
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        Obs_json.to_channel oc (document ?extra t);
        output_char oc '\n')
  end
