(** Minimal hand-rolled JSON emission (no JSON library in the image;
    same style as [Bench_json], factored so the observability exporters
    and the CLI share one escaper).

    A value is a function that appends its rendering to a buffer, so
    documents compose without intermediate strings. *)

type t = Buffer.t -> unit

val str : string -> t
val int : int -> t

val float : float -> t
(** Finite floats render with [%.6g]; NaN and infinities render as
    [null] (JSON has no lexical form for them). *)

val bool : bool -> t
val null : t

val arr : t list -> t
val obj : (string * t) list -> t

val to_string : t -> string
val to_channel : out_channel -> t -> unit

val escape : string -> string
(** JSON string-body escaping (quotes, backslash, control chars). *)
