let schema_version = "ftrace.trace/1"

let usec s = s *. 1e6

(* Virtual-thread placement: shard spans get their own rows so the
   timeline shows per-shard lifetimes side by side. *)
let tid_of_span (s : Obs_span.span) =
  match
    if String.length s.Obs_span.name > 6
       && String.sub s.Obs_span.name 0 6 = "shard-"
    then
      int_of_string_opt
        (String.sub s.Obs_span.name 6 (String.length s.Obs_span.name - 6))
    else None
  with
  | Some n when n >= 0 -> n + 1
  | _ -> 0

let attr_json = function
  | Obs_span.Int n -> Obs_json.int n
  | Obs_span.Float f -> Obs_json.float f
  | Obs_span.Str s -> Obs_json.str s

let args_json attrs =
  Obs_json.obj (List.map (fun (k, v) -> (k, attr_json v)) attrs)

let is_race_instant (s : Obs_span.span) =
  s.Obs_span.name = "race" && s.Obs_span.duration = 0.

let complete_event (s : Obs_span.span) =
  Obs_json.obj
    [ ("name", Obs_json.str s.Obs_span.name);
      ("ph", Obs_json.str "X");
      ("pid", Obs_json.int 1);
      ("tid", Obs_json.int (tid_of_span s));
      ("ts", Obs_json.float (usec s.Obs_span.start));
      ("dur", Obs_json.float (usec s.Obs_span.duration));
      ("args", args_json s.Obs_span.attrs) ]

let instant_event (s : Obs_span.span) =
  Obs_json.obj
    [ ("name", Obs_json.str "race");
      ("ph", Obs_json.str "i");
      ("s", Obs_json.str "g");  (* global scope: full-height marker *)
      ("pid", Obs_json.int 1);
      ("tid", Obs_json.int (tid_of_span s));
      ("ts", Obs_json.float (usec s.Obs_span.start));
      ("args", args_json s.Obs_span.attrs) ]

let metadata ~tid ~name =
  Obs_json.obj
    [ ("name", Obs_json.str "thread_name");
      ("ph", Obs_json.str "M");
      ("pid", Obs_json.int 1);
      ("tid", Obs_json.int tid);
      ("args", Obs_json.obj [ ("name", Obs_json.str name) ]) ]

(* Perfetto counter tracks from the profiler's sampled series: one
   ph:"C" event per point per track, cumulative ops, so the track's
   slope is the instantaneous fast-path vs VC-walk rate.  Timestamps
   share the monotonic clock with the span sink (both epochs are taken
   at CLI setup, microseconds apart). *)
let counter_event ~name ~at ~value =
  Obs_json.obj
    [ ("name", Obs_json.str name);
      ("ph", Obs_json.str "C");
      ("pid", Obs_json.int 1);
      ("tid", Obs_json.int 0);
      ("ts", Obs_json.float (usec at));
      ("args", Obs_json.obj [ ("ops", Obs_json.int value) ]) ]

let counter_events prof =
  List.concat_map
    (fun (at, o1, vc) ->
      [ counter_event ~name:"prof.o1_ops" ~at ~value:o1;
        counter_event ~name:"prof.vc_ops" ~at ~value:vc ])
    (Obs_prof.series prof)

let process_metadata =
  Obs_json.obj
    [ ("name", Obs_json.str "process_name");
      ("ph", Obs_json.str "M");
      ("pid", Obs_json.int 1);
      ("args", Obs_json.obj [ ("name", Obs_json.str "ftrace analysis") ]) ]

let document ?(prof = Obs_prof.disabled) t =
  let spans = match Obs.spans t with Some s -> Obs_span.spans s | None -> [] in
  let tids =
    List.sort_uniq Int.compare (0 :: List.map tid_of_span spans)
  in
  let names =
    process_metadata
    :: List.map
         (fun tid ->
           metadata ~tid
             ~name:
               (if tid = 0 then "driver"
                else Printf.sprintf "shard %d" (tid - 1)))
         tids
  in
  let events =
    List.map
      (fun s -> if is_race_instant s then instant_event s else complete_event s)
      spans
  in
  let counters = counter_events prof in
  Obs_json.obj
    [ ("displayTimeUnit", Obs_json.str "ms");
      ("otherData",
       Obs_json.obj
         [ ("schema", Obs_json.str schema_version);
           ("ocaml", Obs_json.str Sys.ocaml_version);
           ("cores", Obs_json.int (Obs_cores.recommended ())) ]);
      ("traceEvents", Obs_json.arr (names @ events @ counters)) ]

let to_string ?prof t = Obs_json.to_string (document ?prof t)

let write_file ~path ?prof t =
  if path = "-" then begin
    Obs_json.to_channel stdout (document ?prof t);
    print_newline ()
  end
  else begin
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        Obs_json.to_channel oc (document ?prof t);
        output_char oc '\n')
  end
