(** State and rendering for [ftrace watch]: folds [ftrace.live/1]
    NDJSON lines into a running view and renders it as a terminal
    panel or a one-line-per-record stream.

    Pure string-out rendering — the CLI owns the tailing loop and the
    redraw escapes — so panels are testable by feeding records and
    asserting on the output. *)

type t

val create : unit -> t

val feed : t -> Obs_json_read.t -> unit
(** Fold one parsed record (header, delta, or final) in.  Unknown
    fields are ignored (forward compatibility within the /1 major). *)

val feed_line : t -> string -> unit
(** [feed] after parsing; blank and malformed lines are skipped. *)

val final : t -> bool
val warnings : t -> int

val seq : t -> int
(** Sequence number of the latest record folded in (0 before any) —
    lets a tailing loop detect that a redraw is due. *)

val render_line : t -> string
(** One status line for the latest record (non-TTY sinks). *)

val render_panel : ?width:int -> t -> string list
(** The self-updating panel: progress bar + ETA, ev/s sparkline,
    fast-path share, counters, top rules, per-worker bars; as lines
    without trailing newlines. *)
