/* Monotonic wall clock for the parallel driver.
 *
 * Unix.gettimeofday is subject to NTP steps and manual clock changes:
 * a wall-time measurement taken across a step can come out negative,
 * which then poisons benchmark records (negative elapsed, infinite
 * throughput).  CLOCK_MONOTONIC is immune to both.  OCaml's bundled
 * Unix library does not expose clock_gettime, so this stub does.
 */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value ft_monotonic_seconds(value unit)
{
  struct timespec ts;
  (void) unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_double((double) ts.tv_sec + (double) ts.tv_nsec * 1e-9);
}
