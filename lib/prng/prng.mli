(** Deterministic, splittable pseudo-random number generator
    (SplitMix64).

    Every source of randomness in the reproduction — trace generation,
    the scheduler's interleaving choices, workload synthesis — draws
    from an explicit [Prng.t] seeded by the caller, so that every
    experiment is reproducible from its seed alone. *)

type t

val create : seed:int -> t

val split : t -> t
(** An independent generator derived from (and advancing) [t]. *)

val next : t -> int
(** Uniform 62-bit non-negative integer. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose_weighted : t -> (float * 'a) list -> 'a
(** Picks an alternative with probability proportional to its weight.
    @raise Invalid_argument on an empty list or non-positive total. *)

val mix3 : int -> int -> int -> int
(** [mix3 a b c] hashes three words to a uniform non-negative [int]
    with no state and no allocation (SplitMix64-style finalizer over
    native ints).  This is the sampling tier's coin: a decision that
    must be a pure function of [(seed, var, ordinal)] hashes the
    triple instead of drawing from a stateful stream, so sequential
    and parallel runs agree bit-for-bit. *)
