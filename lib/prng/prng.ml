type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

(* SplitMix64 (Steele, Lea, Flood 2014). *)
let next64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next64 t }

let next t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  next t mod bound

let float t = Int64.to_float (Int64.shift_right_logical (next64 t) 11)
              *. 0x1.0p-53

let bool t = Int64.logand (next64 t) 1L = 1L
let chance t p = float t < p

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Prng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(* Stateless three-word mixer over native ints: SplitMix64's finalizer
   applied to a combination of the inputs, staying in unboxed [int]
   arithmetic so a per-event call allocates nothing.  Used by the
   sampling tier, whose every decision must be a pure function of
   (seed, variable, ordinal) — no generator state to thread through
   shards. *)
let mix3 a b c =
  (* the 64-bit constants clipped to OCaml's 63-bit [int]; odd, so
     multiplication stays a bijection mod 2^63 *)
  let golden = 0x1E3779B97F4A7C15 in
  let z = a * golden in
  let z = (z + b) * 0x3F58476D1CE4E5B9 in
  let z = (z + c) * 0x14D049BB133111EB in
  let z = z lxor (z lsr 31) in
  let z = z * golden in
  let z = z lxor (z lsr 29) in
  z land max_int

let choose_weighted t alternatives =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0. alternatives in
  if total <= 0. then invalid_arg "Prng.choose_weighted: non-positive total";
  let target = float t *. total in
  let rec go acc = function
    | [] -> invalid_arg "Prng.choose_weighted: empty list"
    | [ (_, x) ] -> x
    | (w, x) :: rest -> if acc +. w > target then x else go (acc +. w) rest
  in
  go 0. alternatives
