type stmt =
  | Read of Var.t
  | Write of Var.t
  | Acquire of Lockid.t
  | Release of Lockid.t
  | Fork of Tid.t
  | Join of Tid.t
  | Volatile_read of Volatile.t
  | Volatile_write of Volatile.t
  | Barrier_wait of int
  | Wait of Lockid.t
  | Txn_begin
  | Txn_end
  | Async of Tid.t
  | Finish of stmt list

type thread = { tid : Tid.t; body : stmt list }
type barrier = { id : int; parties : int }

type t = {
  threads : thread list;
  barriers : barrier list;
  roots : Tid.t list;
}

let rec iter_stmts f stmts =
  List.iter
    (fun st ->
      f st;
      match st with Finish body -> iter_stmts f body | _ -> ())
    stmts

(* Spawn sites of either tier, in syntactic order:
   (spawner, target, is_async). *)
let spawn_sites threads =
  let sites = ref [] in
  List.iter
    (fun th ->
      iter_stmts
        (function
          | Fork u -> sites := (th.tid, u, false) :: !sites
          | Async u -> sites := (th.tid, u, true) :: !sites
          | _ -> ())
        th.body)
    threads;
  List.rev !sites

let make ?(barriers = []) ?roots threads =
  let tids = List.map (fun th -> th.tid) threads in
  (let seen = Hashtbl.create 16 in
   List.iter
     (fun t ->
       if Hashtbl.mem seen t then
         invalid_arg
           (Printf.sprintf "Program.make: duplicate thread id %d" t);
       Hashtbl.replace seen t ())
     tids);
  let sites = spawn_sites threads in
  let verb is_async = if is_async then "async" else "fork" in
  List.iter
    (fun (t, u, a) ->
      if not (List.mem u tids) then
        invalid_arg
          (Printf.sprintf "Program.make: %s of unknown thread %d" (verb a) u);
      if Tid.equal t u then
        invalid_arg
          (Printf.sprintf "Program.make: thread %d %ss itself" t
             (if a then "async" else "fork")))
    sites;
  let forked = List.filter_map (fun (_, u, a) -> if a then None else Some u) sites in
  let asynced = List.filter_map (fun (_, u, a) -> if a then Some u else None) sites in
  List.iter
    (fun u ->
      if List.mem u forked then
        invalid_arg
          (Printf.sprintf
             "Program.make: thread %d is both forked and asynced (a thread \
              belongs to exactly one spawn tier)"
             u))
    asynced;
  let spawned = forked @ asynced in
  let roots =
    match roots with
    | Some roots -> roots
    | None -> List.filter (fun t -> not (List.mem t spawned)) tids
  in
  List.iter
    (fun (_, u, a) ->
      if List.mem u roots then
        invalid_arg
          (Printf.sprintf "Program.make: %s of root thread %d" (verb a) u))
    sites;
  if roots = [] && threads <> [] then
    invalid_arg
      "Program.make: no root thread (every thread is a spawn target)";
  (* Every async target must be reachable from a root through the spawn
     graph; an unreachable task means its Async sites sit in a spawn
     cycle (or under one) and the scheduler could never start it. *)
  (let reachable = Hashtbl.create 16 in
   let rec visit t =
     if not (Hashtbl.mem reachable t) then begin
       Hashtbl.replace reachable t ();
       List.iter (fun (s, u, _) -> if Tid.equal s t then visit u) sites
     end
   in
   List.iter visit roots;
   List.iter
     (fun u ->
       if not (Hashtbl.mem reachable u) then
         invalid_arg
           (Printf.sprintf
              "Program.make: task %d is unreachable from any root (async \
               spawn cycle)"
              u))
     asynced);
  (let seen = Hashtbl.create 4 in
   List.iter
     (fun (b : barrier) ->
       if Hashtbl.mem seen b.id then
         invalid_arg
           (Printf.sprintf "Program.make: duplicate barrier id %d" b.id);
       Hashtbl.replace seen b.id ();
       if b.parties < 2 then
         invalid_arg
           (Printf.sprintf
              "Program.make: barrier %d needs at least 2 parties (has %d)"
              b.id b.parties))
     barriers);
  { threads; barriers; roots }

let thread_count p = List.length p.threads

let has_tasks p =
  List.exists
    (fun th ->
      let found = ref false in
      iter_stmts
        (function Async _ | Finish _ -> found := true | _ -> ())
        th.body;
      !found)
    p.threads

(* Structural fingerprint of the whole program shape.  Explicit
   recursion through a strong mixer — [Hashtbl.hash] truncates its
   traversal and would collide distinct bodies — so the certificate
   cache can tell any two differently-shaped programs apart. *)
let structural_hash p =
  let h = ref 0x5deece66d in
  let add tag v = h := Prng.mix3 !h tag v in
  let rec stmt = function
    | Read x -> add 1 (Var.key Var.Fine x)
    | Write x -> add 2 (Var.key Var.Fine x)
    | Acquire m -> add 3 m
    | Release m -> add 4 m
    | Fork u -> add 5 u
    | Join u -> add 6 u
    | Volatile_read v -> add 7 v
    | Volatile_write v -> add 8 v
    | Barrier_wait b -> add 9 b
    | Wait m -> add 10 m
    | Txn_begin -> add 11 0
    | Txn_end -> add 12 0
    | Async u -> add 13 u
    | Finish body ->
      add 14 (List.length body);
      List.iter stmt body;
      add 15 0
  in
  List.iter
    (fun th ->
      add 16 th.tid;
      add 17 (List.length th.body);
      List.iter stmt th.body)
    p.threads;
  List.iter (fun (b : barrier) -> add 18 b.id; add 19 b.parties) p.barriers;
  List.iter (fun t -> add 20 t) p.roots;
  !h

let locked m body =
  (* a synchronized block is also an atomic region for the Section 5.2
     checkers, hence the transaction markers *)
  (Txn_begin :: Acquire m :: body) @ [ Release m; Txn_end ]
let txn body = (Txn_begin :: body) @ [ Txn_end ]
let reads x n = List.init n (fun _ -> Read x)
let writes x n = List.init n (fun _ -> Write x)

let repeat n body =
  List.concat (List.init n (fun _ -> body))
