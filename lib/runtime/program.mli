(** A small DSL for concurrent programs.

    This is the reproduction's substitute for RoadRunner's instrumented
    Java programs: a program is a set of threads, each a straight-line
    sequence of statements; the {!Scheduler} interleaves them under a
    seeded PRNG and emits the corresponding event trace.  Control flow
    (loops, conditionals) is resolved at construction time by the
    workload generators, which build the statement arrays
    programmatically.

    Threads come in two spawn tiers.  The original {e fork/join} tier
    ([Fork]/[Join]) models raw threads.  The {e async-finish} tier
    ([Async]/[Finish]) models task pools in the X10 / Habanero /
    domainslib style: [Async u] starts task [u] and registers it with
    the innermost enclosing [Finish] scope (the spawner's own, or the
    one it was itself spawned under); a [Finish] block does not
    complete until every task transitively registered with it has
    finished.  The scheduler emits plain fork/join-shaped events for
    the task tier, so every downstream detector works unchanged — but
    the static layer ({!module:Ft_static.Static}) exploits the
    series-parallel structure the scoping guarantees. *)

type stmt =
  | Read of Var.t
  | Write of Var.t
  | Acquire of Lockid.t
      (** re-entrant: nested acquires of a held lock are filtered out
          of the event stream, as RoadRunner does *)
  | Release of Lockid.t
  | Fork of Tid.t               (** target thread starts running *)
  | Join of Tid.t               (** blocks until target finishes *)
  | Volatile_read of Volatile.t
  | Volatile_write of Volatile.t
  | Barrier_wait of int         (** blocks until the barrier fills *)
  | Wait of Lockid.t
      (** [m.wait()]: releases [m], later re-acquires it — modeled, as
          in Section 4, by its underlying release and acquisition.
          The thread must hold [m]. *)
  | Txn_begin                   (** atomic-block marker (Section 5.2) *)
  | Txn_end
  | Async of Tid.t
      (** task-tier spawn: starts task [Tid.t] and registers it with
          the innermost enclosing finish scope (emits a fork event) *)
  | Finish of stmt list
      (** finish scope: runs the body, then blocks until every task
          transitively registered with the scope has finished (emits
          one join event per registered task); nests freely *)

type thread = { tid : Tid.t; body : stmt list }

type barrier = { id : int; parties : int }
(** A cyclic barrier: every time [parties] threads are waiting on it,
    all are released together (one [barrier_rel] event). *)

type t = private {
  threads : thread list;
  barriers : barrier list;
  roots : Tid.t list;  (** threads running at program start *)
}

val make : ?barriers:barrier list -> ?roots:Tid.t list -> thread list -> t
(** [make threads] builds a program.  [roots] defaults to the threads
    never targeted by a [Fork] or [Async].
    @raise Invalid_argument (naming the offending thread or barrier)
    on duplicate thread ids, spawns of unknown, root, or self threads,
    a thread targeted by both [Fork] and [Async], async targets
    unreachable from any root (spawn cycles), duplicate barrier ids,
    or barriers with fewer than 2 parties. *)

val thread_count : t -> int

val iter_stmts : (stmt -> unit) -> stmt list -> unit
(** Pre-order iteration over a statement list, descending into
    [Finish] bodies (the [Finish] node itself is visited first). *)

val has_tasks : t -> bool
(** True iff the program uses the async-finish tier ([Async] or
    [Finish] appears anywhere). *)

val structural_hash : t -> int
(** Deterministic fingerprint of the full program structure — every
    statement (recursively), thread ids, barriers, roots.  Any change
    to the program's shape changes the hash (up to 63-bit collisions),
    making it a sound cache key for derived artifacts such as static
    certificates. *)

(** Statement-list combinators used by the workload generators. *)

val locked : Lockid.t -> stmt list -> stmt list
(** [locked m body] is [Acquire m; body; Release m]. *)

val txn : stmt list -> stmt list
(** Wraps [body] in transaction markers. *)

val reads : Var.t -> int -> stmt list
val writes : Var.t -> int -> stmt list
val repeat : int -> stmt list -> stmt list
