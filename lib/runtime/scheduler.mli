(** Seeded interleaving scheduler.

    Executes a {!Program.t} by repeatedly picking a schedulable thread
    at random and running its next statement, emitting the
    corresponding trace event.  Blocking semantics:

    - [Acquire m] runs only while [m] is free;
    - [Join u] runs only once [u] has finished;
    - [Barrier_wait b] parks the thread until [b.parties] threads are
      parked, then releases them all with one [barrier_rel] event;
    - [Wait m] emits the release of [m] immediately and parks the
      thread until it can re-acquire [m] (notify affects scheduling
      only, so it needs no event — Section 4);
    - [Async u] starts task [u] like a fork (one [fork] event) and
      registers it with the innermost enclosing finish scope — the
      spawner's own, or the scope the spawner was itself registered
      with at spawn (registration escapes through task hops, as in
      X10's async-finish semantics);
    - the close of a [Finish] block parks the thread until every task
      registered with the scope has finished, emitting one [join]
      event per registered task (smallest ready tid first).  Scope
      boundaries themselves emit no events: the task tier compiles
      entirely into fork/join-shaped traces.

    Scheduling is quantum-based: after each step the same thread
    continues with probability [quantum] while it can, which yields
    realistic run bursts (and hence realistic same-epoch rates for the
    Figure 2 frequencies).  The produced trace is feasible by
    construction and identical across runs with equal seeds. *)

exception Deadlock of string
(** No thread can make progress but some have not finished. *)

exception Invalid_program of string
(** A thread broke the DSL's rules at runtime: released or waited on a
    lock it does not hold (or held re-entrantly), forked or asynced a
    non-fresh thread, or waited on an unknown barrier.  Locks are re-entrant:
    nested acquires and releases of a held lock are legal and —
    exactly as RoadRunner does (Section 4) — filtered out of the
    emitted event stream as redundant. *)

type options = {
  seed : int;
  quantum : float;  (** probability of staying on the same thread *)
}

val default_options : options

val run : ?options:options -> Program.t -> Trace.t
