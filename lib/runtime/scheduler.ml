exception Deadlock of string
exception Invalid_program of string

type options = { seed : int; quantum : float }

let default_options = { seed = 42; quantum = 0.85 }

type status =
  | Fresh               (* not yet forked / asynced *)
  | Runnable
  | Reacquiring of Lockid.t  (* parked inside Wait, needs the lock back *)
  | At_barrier of int
  | Finished

(* One live finish scope.  Tasks register on spawn; the owner joins
   each registered task (smallest tid first among the finished ones)
   while blocked at the scope's close. *)
type frame = {
  mutable registered : Tid.t list;
  mutable joined : Tid.t list;
}

(* Bodies are flattened so a nested [Finish] becomes a bracketed region
   of the same flat array — the pc then walks scope boundaries like any
   other operation. *)
type op =
  | Op_stmt of Program.stmt
  | Op_finish_begin
  | Op_finish_end

type thread_state = {
  tid : Tid.t;
  body : op array;
  mutable pc : int;
  mutable status : status;
  mutable holds : (Lockid.t * int) list;  (* lock, re-entrancy depth *)
  mutable fin_stack : frame list;         (* own open finish scopes *)
  mutable inherit_frame : frame option;
      (* scope this task was registered with at spawn; its own spawns
         outside any local finish register there too (async-finish
         semantics: registration escapes to the nearest enclosing
         scope, however many task hops away) *)
}

type state = {
  rng : Prng.t;
  threads : thread_state array;  (* dense, indexed by tid *)
  locks : (Lockid.t, Tid.t) Hashtbl.t;  (* holder *)
  barriers : (int, int) Hashtbl.t;      (* id -> parties *)
  waiting : (int, Tid.t list) Hashtbl.t;  (* barrier id -> parked threads *)
  builder : Trace.Builder.t;
}

let invalid fmt = Printf.ksprintf (fun m -> raise (Invalid_program m)) fmt

let lock_free s m = not (Hashtbl.mem s.locks m)

let emit s e = Trace.Builder.add s.builder e

let rec flatten acc = function
  | [] -> acc
  | Program.Finish body :: rest ->
    let acc = flatten (Op_finish_begin :: acc) body in
    flatten (Op_finish_end :: acc) rest
  | st :: rest -> flatten (Op_stmt st :: acc) rest

let ops_of_body body = Array.of_list (List.rev (flatten [] body))

let current_frame th =
  match th.fin_stack with f :: _ -> Some f | [] -> th.inherit_frame

let unjoined f = List.filter (fun u -> not (List.mem u f.joined)) f.registered

(* Can this thread take a step right now? *)
let can_step s th =
  match th.status with
  | Fresh | Finished | At_barrier _ -> false
  | Reacquiring m -> lock_free s m
  | Runnable -> (
    if th.pc >= Array.length th.body then true (* step to Finished *)
    else
      match th.body.(th.pc) with
      | Op_finish_begin -> true
      | Op_finish_end -> (
        (* close a scope: either all registered tasks are joined, or
           some finished one is ready to be joined right now *)
        match th.fin_stack with
        | [] -> assert false
        | f :: _ -> (
          match unjoined f with
          | [] -> true
          | pending ->
            List.exists (fun u -> s.threads.(u).status = Finished) pending))
      | Op_stmt stmt -> (
        match stmt with
        | Program.Acquire m -> (
          (* a self-held lock is always re-acquirable (Java monitors are
             re-entrant; the redundant acquire emits no event) *)
          match Hashtbl.find_opt s.locks m with
          | None -> true
          | Some holder -> Tid.equal holder th.tid)
        | Program.Join u -> s.threads.(u).status = Finished
        | Program.Read _ | Program.Write _ | Program.Release _
        | Program.Fork _ | Program.Async _ | Program.Volatile_read _
        | Program.Volatile_write _ | Program.Barrier_wait _ | Program.Wait _
        | Program.Txn_begin | Program.Txn_end ->
          true
        | Program.Finish _ -> assert false (* flattened away *)))

let release_barrier_if_full s b =
  let parked = Option.value (Hashtbl.find_opt s.waiting b) ~default:[] in
  let parties =
    match Hashtbl.find_opt s.barriers b with
    | Some parties -> parties
    | None -> invalid "barrier %d not declared" b
  in
  if List.length parked >= parties then begin
    let released = List.sort Tid.compare parked in
    Hashtbl.replace s.waiting b [];
    emit s (Event.Barrier_release { threads = released });
    List.iter (fun u -> s.threads.(u).status <- Runnable) released
  end

let step s th =
  let t = th.tid in
  match th.status with
  | Reacquiring m ->
    Hashtbl.replace s.locks m t;
    th.holds <- (m, 1) :: th.holds;
    th.status <- Runnable;
    emit s (Event.Acquire { t; m })
  | Runnable when th.pc >= Array.length th.body ->
    if th.holds <> [] then
      invalid "thread %d finished while holding a lock" t;
    th.status <- Finished
  | Runnable -> (
    match th.body.(th.pc) with
    | Op_finish_begin ->
      th.pc <- th.pc + 1;
      th.fin_stack <- { registered = []; joined = [] } :: th.fin_stack
    | Op_finish_end -> (
      let f = List.hd th.fin_stack in
      let ready =
        unjoined f
        |> List.filter (fun u -> s.threads.(u).status = Finished)
        |> List.sort Tid.compare
      in
      match ready with
      | u :: _ ->
        (* join one finished task per step; the pc stays on the close
           until the scope drains (registrations may still grow while
           we wait, from descendants spawning into this scope) *)
        f.joined <- u :: f.joined;
        emit s (Event.Join { t; u })
      | [] ->
        (* can_step admitted us, so all registered tasks are joined *)
        th.fin_stack <- List.tl th.fin_stack;
        th.pc <- th.pc + 1)
    | Op_stmt stmt -> (
      th.pc <- th.pc + 1;
      match stmt with
      | Program.Read x -> emit s (Event.Read { t; x })
      | Program.Write x -> emit s (Event.Write { t; x })
      | Program.Acquire m -> (
        match Hashtbl.find_opt s.locks m with
        | Some holder when Tid.equal holder t ->
          (* re-entrant acquire: redundant, filtered out of the event
             stream as RoadRunner does (Section 4) *)
          th.holds <-
            List.map
              (fun (m', d) -> if m' = m then (m', d + 1) else (m', d))
              th.holds
        | Some _ -> assert false (* can_step checked availability *)
        | None ->
          Hashtbl.replace s.locks m t;
          th.holds <- (m, 1) :: th.holds;
          emit s (Event.Acquire { t; m }))
      | Program.Release m -> (
        match Hashtbl.find_opt s.locks m with
        | Some holder when Tid.equal holder t -> (
          match List.assoc_opt m th.holds with
          | Some depth when depth > 1 ->
            (* matching re-entrant release: also filtered *)
            th.holds <-
              List.map
                (fun (m', d) -> if m' = m then (m', d - 1) else (m', d))
                th.holds
          | Some _ | None ->
            Hashtbl.remove s.locks m;
            th.holds <- List.filter (fun (m', _) -> m' <> m) th.holds;
            emit s (Event.Release { t; m }))
        | Some _ | None ->
          invalid "thread %d releases lock %d it does not hold" t m)
      | Program.Fork u ->
        let child = s.threads.(u) in
        if child.status <> Fresh then invalid "thread %d forked twice" u;
        child.status <- Runnable;
        emit s (Event.Fork { t; u })
      | Program.Async u ->
        let child = s.threads.(u) in
        if child.status <> Fresh then invalid "task %d asynced twice" u;
        let scope = current_frame th in
        (match scope with
        | Some f -> f.registered <- u :: f.registered
        | None -> () (* escapes every finish scope: never joined *));
        child.inherit_frame <- scope;
        child.status <- Runnable;
        emit s (Event.Fork { t; u })
      | Program.Join u ->
        emit s (Event.Join { t; u })
      | Program.Volatile_read v -> emit s (Event.Volatile_read { t; v })
      | Program.Volatile_write v -> emit s (Event.Volatile_write { t; v })
      | Program.Barrier_wait b ->
        th.status <- At_barrier b;
        let parked =
          Option.value (Hashtbl.find_opt s.waiting b) ~default:[]
        in
        Hashtbl.replace s.waiting b (t :: parked);
        release_barrier_if_full s b
      | Program.Wait m ->
        (match Hashtbl.find_opt s.locks m with
        | Some holder when Tid.equal holder t ->
          (match List.assoc_opt m th.holds with
          | Some depth when depth > 1 ->
            invalid "thread %d waits on lock %d held re-entrantly" t m
          | Some _ | None -> ());
          Hashtbl.remove s.locks m;
          th.holds <- List.filter (fun (m', _) -> m' <> m) th.holds
        | Some _ | None ->
          invalid "thread %d waits on lock %d it does not hold" t m);
        emit s (Event.Release { t; m });
        th.status <- Reacquiring m
      | Program.Txn_begin -> emit s (Event.Txn_begin { t })
      | Program.Txn_end -> emit s (Event.Txn_end { t })
      | Program.Finish _ -> assert false (* flattened away *)))
  | Fresh | Finished | At_barrier _ -> assert false

let run ?(options = default_options) (p : Program.t) =
  let n =
    List.fold_left (fun acc th -> max acc (th.Program.tid + 1)) 0 p.threads
  in
  let bodies = Array.make n [||] in
  List.iter
    (fun (th : Program.thread) ->
      bodies.(th.tid) <- ops_of_body th.body)
    p.threads;
  let s =
    { rng = Prng.create ~seed:options.seed;
      threads =
        Array.init n (fun tid ->
            { tid;
              body = bodies.(tid);
              pc = 0;
              status = (if List.mem tid p.roots then Runnable else Fresh);
              holds = [];
              fin_stack = [];
              inherit_frame = None });
      locks = Hashtbl.create 16;
      barriers = Hashtbl.create 4;
      waiting = Hashtbl.create 4;
      builder = Trace.Builder.create ~initial_capacity:4096 () }
  in
  List.iter
    (fun (b : Program.barrier) -> Hashtbl.replace s.barriers b.id b.parties)
    p.barriers;
  let unfinished () =
    Array.exists (fun th -> th.status <> Finished && th.status <> Fresh)
      s.threads
  in
  let steppable () =
    let acc = ref [] in
    Array.iter (fun th -> if can_step s th then acc := th :: !acc) s.threads;
    !acc
  in
  let burst th =
    step s th;
    while can_step s th && Prng.chance s.rng options.quantum do
      step s th
    done
  in
  let rec loop () =
    match steppable () with
    | [] ->
      if unfinished () then
        raise
          (Deadlock
             (Printf.sprintf "no schedulable thread at %d events"
                (Trace.Builder.length s.builder)))
    | candidates ->
      burst (Prng.pick_list s.rng candidates);
      loop ()
  in
  loop ();
  Trace.Builder.build s.builder
