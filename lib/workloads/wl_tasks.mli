(** Task-parallel workloads built on the async-finish tier: every
    spawn is an [Async], every join a [Finish] scope closing.  Their
    inter-thread ordering is exactly what the static DPST proves, so
    they exercise the [Task_local]/[Sp_ordered] verdicts and the
    task-tier check elimination. *)

val treesum : Workload.t
(** Binary task-tree reduction over 15 heap-numbered nodes: each
    internal node finishes its two child tasks, then folds their
    partials.  Race-free ([Sp_ordered] partials, [Task_local]
    scratch, read-only config). *)

val taskpipe : Workload.t
(** Four-stage, three-worker pipeline; the main thread closes one
    finish scope per stage, series-ordering each stage's buffer writes
    before the next stage's reads.  Race-free. *)

val daccount : Workload.t
(** Depth-2 divide-and-conquer account audit: task-local shards, a
    lock-protected running total — and one seeded race between two
    leaves in different subtrees (parallel by the DPST), which every
    precise detector must report. *)

val all : Workload.t list
(** [treesum; taskpipe; daccount]. *)
