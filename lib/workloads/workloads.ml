let table1 =
  [ Wl_apps.colt;
    Wl_grande.crypt;
    Wl_grande.lufact;
    Wl_grande.moldyn;
    Wl_grande.montecarlo;
    Wl_apps.mtrt;
    Wl_apps.raja;
    Wl_grande.raytracer;
    Wl_grande.sparse;
    Wl_grande.series;
    Wl_grande.sor;
    Wl_apps.tsp;
    Wl_misc.elevator;
    Wl_misc.philo;
    Wl_misc.hedc;
    Wl_apps.jbb ]

let eclipse = Wl_eclipse.all
let tasks = Wl_tasks.all
let all = table1 @ eclipse @ tasks

let find name =
  List.find_opt (fun w -> String.equal w.Workload.name name) all

let names () = List.map (fun w -> w.Workload.name) all
