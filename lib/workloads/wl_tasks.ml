(* Task-parallel workloads for the async-finish tier.  Unlike the
   Table 1 models (fork/join + barriers + locks), these three exercise
   the structured-parallelism constructs: every spawn is an [Async],
   every join is a [Finish] scope closing.  Their ordering is exactly
   what the static DPST proves, so they are the showcase for the
   [Task_local] and [Sp_ordered] verdicts — and the only family where
   [--static-elim] can retire accesses no skeleton edge could.

   - [treesum]: a binary task-tree reduction.  Internal node [i]
     finishes [Async 2i; Async (2i+1)], then folds the children's
     partials into its own — the read of a child partial is
     series-ordered after the child's write by the finish scope.
   - [taskpipe]: a four-stage pipeline; the main thread closes a
     finish scope per stage, so stage k+1's reads of stage k's buffer
     slices are series-ordered after the writes.
   - [daccount]: divide-and-conquer account auditing with a seeded
     racy variant: two leaves in different subtrees bump an
     unsynchronized counter — parallel by the DPST, a real race every
     precise detector must report. *)

(* -- treesum: binary task-tree reduction --------------------------- *)

(* Heap-numbered nodes 1..15: internals 1..7, leaves 8..15; tid 0 is
   the driver.  [partial.(i)] carries node i's result up the tree. *)
let treesum =
  let program ~scale =
    let a = Patterns.alloc () in
    let config = Patterns.obj a ~fields:6 in
    let partial = Array.init 16 (fun _ -> Patterns.var a) in
    let scratch = Array.init 16 (fun _ -> Patterns.obj a ~fields:4) in
    let internal i =
      { Program.tid = i;
        body =
          Program.Finish
            [ Program.Async (2 * i); Program.Async ((2 * i) + 1) ]
          :: (Patterns.read_only ~reads:1
                [| partial.(2 * i); partial.((2 * i) + 1) |]
             @ [ Program.Write partial.(i) ]) }
    in
    let leaf i =
      { Program.tid = i;
        body =
          Patterns.read_only ~reads:2 config
          @ List.concat
              (List.init scale (fun _ ->
                   Patterns.work ~reads:3 ~writes:2 scratch.(i)))
          @ [ Program.Write partial.(i) ] }
    in
    let main =
      { Program.tid = 0;
        body =
          Program.Finish [ Program.Async 1 ]
          :: Patterns.read_only ~reads:1 [| partial.(1) |] }
    in
    Program.make
      (main
      :: (List.init 7 (fun k -> internal (k + 1))
         @ List.init 8 (fun k -> leaf (k + 8))))
  in
  { Workload.name = "treesum";
    description = "binary task-tree reduction (nested finish scopes)";
    threads = 16;
    compute_bound = true;
    expected_races = 0;
    program }

(* -- taskpipe: staged pipeline ------------------------------------- *)

(* Four stages of three workers; the main thread runs one finish scope
   per stage, so [buf.(k)] is fully written before stage k+1 starts
   reading it.  Worker (k, j) owns slice [buf.(k).(j)]. *)
let taskpipe =
  let stages = 4 and width = 3 in
  let program ~scale =
    let a = Patterns.alloc () in
    let buf =
      Array.init (stages + 1) (fun _ ->
          Array.init width (fun _ -> Patterns.obj a ~fields:5))
    in
    let tid_of k j = ((k - 1) * width) + j + 1 in
    let worker k j =
      { Program.tid = tid_of k j;
        body =
          List.concat
            (List.init scale (fun _ ->
                 List.concat_map
                   (fun jj -> Patterns.read_only ~reads:1 buf.(k - 1).(jj))
                   (List.init width Fun.id)
                 @ Patterns.work ~reads:1 ~writes:1 buf.(k).(j))) }
    in
    let stage_finish k =
      Program.Finish
        (List.init width (fun j -> Program.Async (tid_of k j)))
    in
    let main =
      { Program.tid = 0;
        body =
          List.concat_map
            (fun j -> Patterns.work ~reads:0 ~writes:1 buf.(0).(j))
            (List.init width Fun.id)
          @ List.init stages (fun k -> stage_finish (k + 1))
          @ List.concat_map
              (fun j -> Patterns.read_only ~reads:1 buf.(stages).(j))
              (List.init width Fun.id) }
    in
    Program.make
      (main
      :: List.concat
           (List.init stages (fun k ->
                List.init width (fun j -> worker (k + 1) j))))
  in
  { Workload.name = "taskpipe";
    description = "staged pipeline (one finish scope per stage)";
    threads = (stages * width) + 1;
    compute_bound = true;
    expected_races = 0;
    program }

(* -- daccount: divide-and-conquer with a seeded race --------------- *)

(* Depth-2 D&C over account shards: tid 0 drives, task 1 splits into
   2 and 3, which split into leaves 4/5 and 6/7.  Each leaf audits its
   own shard (task-local), bumps a lock-protected total, and reports
   through [partial].  The seeded bug: leaves 4 and 7 — in different
   subtrees, hence parallel — also bump an unsynchronized hit counter. *)
let daccount =
  let program ~scale =
    let a = Patterns.alloc () in
    let partial = Array.init 8 (fun _ -> Patterns.var a) in
    let shard = Array.init 8 (fun _ -> Patterns.obj a ~fields:4) in
    let total_lock = Patterns.lock a in
    let total = Patterns.var a in
    let racy_first, racy_second = Patterns.racy_pair a in
    let internal i =
      { Program.tid = i;
        body =
          Program.Finish
            [ Program.Async (2 * i); Program.Async ((2 * i) + 1) ]
          :: (Patterns.read_only ~reads:1
                [| partial.(2 * i); partial.((2 * i) + 1) |]
             @ [ Program.Write partial.(i) ]) }
    in
    let leaf i =
      let buggy = if i = 4 then racy_first else if i = 7 then racy_second else [] in
      { Program.tid = i;
        body =
          List.concat
            (List.init scale (fun _ ->
                 Patterns.work ~reads:4 ~writes:1 shard.(i)))
          @ buggy
          @ Patterns.locked_work total_lock ~reads:1 ~writes:1 [| total |]
          @ [ Program.Write partial.(i) ] }
    in
    let main =
      { Program.tid = 0;
        body =
          Program.Finish [ Program.Async 1 ]
          :: (Patterns.read_only ~reads:1 [| partial.(1) |]
             @ Patterns.locked_work total_lock ~reads:1 ~writes:0
                 [| total |]) }
    in
    Program.make
      (main
      :: (List.init 3 (fun k -> internal (k + 1))
         @ List.init 4 (fun k -> leaf (k + 4))))
  in
  { Workload.name = "daccount";
    description =
      "divide-and-conquer audit (lock-protected total, 1 seeded race)";
    threads = 8;
    compute_bound = true;
    expected_races = 1;
    program }

let all = [ treesum; taskpipe; daccount ]
