(** Registry of all workload models. *)

val table1 : Workload.t list
(** The 16 benchmarks of Table 1, in the paper's row order. *)

val eclipse : Workload.t list
(** The five Eclipse operations of Section 5.3. *)

val tasks : Workload.t list
(** The async-finish task-parallel family ({!Wl_tasks.all}). *)

val all : Workload.t list

val find : string -> Workload.t option
(** Look up any workload by name. *)

val names : unit -> string list
